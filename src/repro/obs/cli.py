"""Run-history CLI: inspect, diff and gate past runs (``python -m repro obs``).

Subcommands operate on the JSON-lines trace files ``--trace`` appends
(:mod:`repro.obs.manifest`) and on the ``BENCH_*.json`` benchmark records:

``list [FILE...] [--campaign DIR] [--json] [--limit N]``
    One row per recorded run: benchmark, configuration hash, git revision,
    engine, cache status and the headline results — a quick answer to "what
    ran, when, and what came out".  ``--json`` emits the rows as a JSON
    array for scripting; ``--limit N`` keeps only the most recent N runs;
    ``--campaign DIR`` discovers every per-job manifest history a campaign
    directory holds (its own ``manifests.jsonl`` plus any inside the result
    store) and adds a job-id column to each row.
``html [--manifests FILE]... [--out report.html] [--last N]``
    Render the self-contained HTML dashboard (:mod:`repro.obs.html`) over
    one or more manifest histories: run-history trends, coverage and DL(T)
    curves, n-detection depth, pipeline waterfall, worker lanes, resilience
    and cost attribution.  One file, inline CSS and SVG, no scripts, no
    external resources — open it anywhere, attach it to CI artifacts.
``diff FILE [A B]``
    Field-level comparison of two runs from one history file (indices
    default to the last two; negatives count from the end): configuration
    deltas, result deltas, stage-timing deltas and counter deltas.
``check-bench BENCH [--baseline FILE|git:REV] [--tolerance X]``
    Regression gate: compare a freshly-written benchmark record against a
    committed baseline.  Every shared numeric timing key (``*seconds``) must
    stay within ``tolerance`` x baseline; exits non-zero naming each
    regressed key.  The default baseline is the file as committed at
    ``HEAD`` (``git show HEAD:<path>``), so CI can overwrite the working
    copy with fresh numbers and still gate against the repository's.

Timing gates in shared CI are noisy, hence the generous default tolerance:
the gate exists to catch order-of-magnitude regressions (an accidentally
serialised pool, a dropped word-width), not single-digit-percent drift.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

from repro.obs.manifest import RunManifest, read_manifests
from repro.obs.report import _table as _table_lines

__all__ = ["obs_main"]

DEFAULT_TOLERANCE = 3.0


def _table(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    lines = _table_lines(headers, rows)
    if title:
        lines.insert(0, title)
    return "\n".join(lines)


def build_obs_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Inspect, diff and gate recorded runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="tabulate the runs in trace files")
    p_list.add_argument("files", nargs="*", metavar="FILE")
    p_list.add_argument(
        "--campaign",
        metavar="DIR",
        help=(
            "discover per-job manifest histories inside a campaign "
            "directory (manifests.jsonl plus any under its result store) "
            "and label each row with its job id"
        ),
    )
    p_list.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit rows as a JSON array instead of an aligned table",
    )
    p_list.add_argument(
        "--limit",
        type=int,
        metavar="N",
        help="show only the most recent N runs (across all files)",
    )

    p_html = sub.add_parser(
        "html", help="render the self-contained HTML dashboard"
    )
    p_html.add_argument(
        "--manifests",
        action="append",
        metavar="FILE",
        help="manifest history file(s) (default: runs.jsonl; repeatable)",
    )
    p_html.add_argument(
        "--out",
        default="report.html",
        metavar="FILE",
        help="output HTML path (default: report.html)",
    )
    p_html.add_argument(
        "--last",
        type=int,
        metavar="N",
        help="render only the most recent N runs",
    )

    p_diff = sub.add_parser("diff", help="compare two runs from one file")
    p_diff.add_argument("file", metavar="FILE")
    p_diff.add_argument(
        "indices",
        nargs="*",
        type=int,
        metavar="INDEX",
        help="two run indices (default: the last two; negatives ok)",
    )

    p_bench = sub.add_parser(
        "check-bench", help="gate a fresh benchmark record against a baseline"
    )
    p_bench.add_argument("bench", metavar="BENCH_JSON")
    p_bench.add_argument(
        "--baseline",
        metavar="FILE|git:REV",
        help=(
            "baseline record: a JSON file, or git:REV to read the bench "
            "file as committed at REV (default: git:HEAD)"
        ),
    )
    p_bench.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=(
            "fail when fresh > baseline * tolerance for any timing key "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    return parser


# ---------------------------------------------------------------------------
# list
# ---------------------------------------------------------------------------
def _job_id(manifest: RunManifest) -> str | None:
    """The campaign job id a manifest was written under, if any.

    Campaign supervisors stamp ``results["job_id"]`` (and ``results
    ["campaign"]``) into every per-job manifest; standalone runs carry
    neither.
    """
    job_id = (manifest.results or {}).get("job_id")
    return str(job_id) if isinstance(job_id, str) and job_id else None


def _manifest_row(
    index: int, source: str, manifest: RunManifest, with_job: bool = False
) -> list[str]:
    engine = manifest.engine or {}
    engine_label = str(engine.get("engine", "?"))
    # "kind" (python/numpy) appeared with the engine registry; manifests
    # recorded before it simply show the serial/parallel mode alone.
    if engine.get("kind"):
        engine_label += f"/{engine['kind']}"
    if engine.get("workers"):
        engine_label += f"x{engine['workers']}"
    if engine.get("degraded"):
        engine_label += " (degraded)"
    results = manifest.results or {}
    final_dl = results.get("final_DL")
    theta_max = results.get("theta_max_fit")
    wall = (manifest.stage_timings or {}).get("pipeline.run")
    row = [
        str(index),
        source,
        manifest.benchmark,
        manifest.config_hash[:12] or "?",
        str(manifest.git or "?"),
        manifest.cache or "-",
        engine_label,
        f"{float(theta_max):.3f}" if theta_max is not None else "-",
        f"{1e6 * float(final_dl):.0f}" if final_dl is not None else "-",
        f"{wall:.2f}" if wall is not None else "-",
    ]
    if with_job:
        job_id = _job_id(manifest)
        row.insert(2, job_id[:12] if job_id else "-")
    return row


def _manifest_json_row(
    index: int, source: str, manifest: RunManifest
) -> dict[str, object]:
    """The ``--json`` shape of one run row: typed values, not table text."""
    engine = manifest.engine or {}
    results = manifest.results or {}
    final_dl = results.get("final_DL")
    theta_max = results.get("theta_max_fit")
    wall = (manifest.stage_timings or {}).get("pipeline.run")
    return {
        "index": index,
        "file": source,
        "benchmark": manifest.benchmark,
        "config_hash": manifest.config_hash,
        "seed": manifest.seed,
        "git": manifest.git,
        "cache": manifest.cache,
        "engine": engine.get("engine"),
        "engine_kind": engine.get("kind"),
        "workers": engine.get("workers"),
        "degraded": bool(engine.get("degraded")),
        "theta_max": float(theta_max) if theta_max is not None else None,
        "final_DL_ppm": (
            1e6 * float(final_dl) if final_dl is not None else None
        ),
        "wall_s": float(wall) if wall is not None else None,
        "job_id": _job_id(manifest),
        "campaign": (manifest.results or {}).get("campaign"),
    }


def _campaign_manifest_files(campaign_dir: str) -> list[str]:
    """Manifest histories a campaign directory holds.

    The supervisor's own ``manifests.jsonl`` first, then any appended
    beside payloads in the (possibly shared) result store, recursively.
    """
    from pathlib import Path

    home = Path(campaign_dir)
    paths = []
    if (home / "manifests.jsonl").is_file():
        paths.append(home / "manifests.jsonl")
    results = home / "results"
    if results.is_dir():
        paths.extend(sorted(results.rglob("manifests.jsonl")))
    return [str(p) for p in paths]


def _list_main(
    files: list[str],
    as_json: bool = False,
    limit: int | None = None,
    campaign: str | None = None,
) -> int:
    files = list(files)
    if campaign is not None:
        discovered = _campaign_manifest_files(campaign)
        if not discovered and not files:
            print(
                f"error: no manifest histories found under campaign "
                f"directory {campaign}",
                file=sys.stderr,
            )
            return 2
        files.extend(discovered)
    if not files:
        print(
            "error: no trace files given (pass FILE... or --campaign DIR)",
            file=sys.stderr,
        )
        return 2
    entries: list[tuple[int, str, RunManifest]] = []
    for path in files:
        try:
            manifests = read_manifests(path)
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        entries.extend((i, path, m) for i, m in enumerate(manifests))
    if limit is not None:
        if limit <= 0:
            print("error: --limit must be positive", file=sys.stderr)
            return 2
        entries = entries[-limit:]
    if as_json:
        print(
            json.dumps(
                [_manifest_json_row(i, p, m) for i, p, m in entries],
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    with_job = campaign is not None
    rows = [_manifest_row(i, p, m, with_job=with_job) for i, p, m in entries]
    if not rows:
        print("no runs recorded")
        return 0
    headers = [
        "#",
        "file",
        "benchmark",
        "config",
        "git",
        "cache",
        "engine",
        "theta_max",
        "DL ppm",
        "wall s",
    ]
    if with_job:
        headers.insert(2, "job")
    print(
        _table(
            headers,
            rows,
            title=f"{len(rows)} recorded run(s)",
        )
    )
    return 0


# ---------------------------------------------------------------------------
# html
# ---------------------------------------------------------------------------
def _html_main(
    files: list[str] | None, out: str, last: int | None
) -> int:
    from repro.obs.html import write_report

    files = files or ["runs.jsonl"]
    if last is not None and last <= 0:
        print("error: --last must be positive", file=sys.stderr)
        return 2
    manifests: list[RunManifest] = []
    for path in files:
        try:
            manifests.extend(read_manifests(path))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
    if not manifests:
        print(
            f"error: no runs recorded in {', '.join(files)}; run "
            "`python -m repro <benchmark> --trace FILE` first",
            file=sys.stderr,
        )
        return 2
    n_bytes = write_report(
        out, manifests, last=last, source=", ".join(files)
    )
    shown = min(len(manifests), last) if last else len(manifests)
    print(
        f"wrote {out} ({n_bytes:,} bytes, {shown} of "
        f"{len(manifests)} recorded run(s))"
    )
    return 0


# ---------------------------------------------------------------------------
# diff
# ---------------------------------------------------------------------------
def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _diff_section(
    title: str,
    a: dict,
    b: dict,
    numeric_delta: bool = False,
) -> list[str]:
    """Rows for keys that differ between two flat dictionaries."""
    lines: list[str] = []
    rows: list[list[str]] = []
    for key in sorted(set(a) | set(b)):
        va, vb = a.get(key), b.get(key)
        if va == vb:
            continue
        delta = ""
        if (
            numeric_delta
            and isinstance(va, (int, float))
            and isinstance(vb, (int, float))
            and not isinstance(va, bool)
            and not isinstance(vb, bool)
        ):
            delta = f"{vb - va:+.6g}"
            if va:
                delta += f" ({100.0 * (vb - va) / va:+.1f}%)"
        rows.append(
            [
                key,
                _fmt(va) if key in a else "-",
                _fmt(vb) if key in b else "-",
                delta,
            ]
        )
    if rows:
        lines.append(_table(["key", "A", "B", "delta"], rows, title=title))
    return lines


def _flat_counters(manifest: RunManifest) -> dict[str, object]:
    counters = (manifest.metrics or {}).get("counters", {})
    return dict(counters) if isinstance(counters, dict) else {}


def _diff_main(path: str, indices: list[int]) -> int:
    if indices and len(indices) != 2:
        print("error: diff takes zero or two run indices", file=sys.stderr)
        return 2
    try:
        manifests = read_manifests(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    if len(manifests) < 2:
        print(
            f"error: {path} records {len(manifests)} run(s); diff needs two",
            file=sys.stderr,
        )
        return 2
    ia, ib = indices if indices else (-2, -1)
    try:
        ma, mb = manifests[ia], manifests[ib]
    except IndexError:
        print(
            f"error: run index out of range (file records "
            f"{len(manifests)} runs)",
            file=sys.stderr,
        )
        return 2
    print(
        f"A: run {ia} ({ma.benchmark}, config {ma.config_hash[:12]}, "
        f"git {ma.git or '?'})"
    )
    print(
        f"B: run {ib} ({mb.benchmark}, config {mb.config_hash[:12]}, "
        f"git {mb.git or '?'})"
    )
    sections: list[str] = []
    sections += _diff_section("config", ma.config, mb.config)
    sections += _diff_section(
        "results", ma.results or {}, mb.results or {}, numeric_delta=True
    )
    sections += _diff_section(
        "stage timings (s)",
        ma.stage_timings or {},
        mb.stage_timings or {},
        numeric_delta=True,
    )
    sections += _diff_section(
        "counters", _flat_counters(ma), _flat_counters(mb), numeric_delta=True
    )
    if not sections:
        print("runs are identical in config, results, timings and counters")
    else:
        print("\n" + "\n\n".join(sections))
    return 0


# ---------------------------------------------------------------------------
# check-bench
# ---------------------------------------------------------------------------
def _timing_keys(record: object, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric ``*seconds`` key of a nested bench record."""
    out: dict[str, float] = {}
    if isinstance(record, dict):
        for key, value in record.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            if (
                str(key).endswith("seconds")
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                out[dotted] = float(value)
            else:
                out.update(_timing_keys(value, dotted))
    elif isinstance(record, list):
        for i, value in enumerate(record):
            out.update(_timing_keys(value, f"{prefix}[{i}]"))
    return out


def _load_baseline(bench_path: str, baseline: str | None) -> object:
    """Parse the baseline record: a JSON file or a git revision of it."""
    if baseline is None:
        baseline = "git:HEAD"
    if baseline.startswith("git:"):
        rev = baseline[len("git:") :] or "HEAD"
        out = subprocess.run(
            ["git", "show", f"{rev}:./{bench_path}"],
            capture_output=True,
            text=True,
            timeout=10.0,
        )
        if out.returncode != 0:
            raise FileNotFoundError(
                f"git show {rev}:./{bench_path} failed: "
                f"{out.stderr.strip() or 'unknown error'}"
            )
        return json.loads(out.stdout)
    with open(baseline, encoding="utf-8") as handle:
        return json.load(handle)


def _check_bench_main(
    bench_path: str, baseline: str | None, tolerance: float
) -> int:
    if tolerance <= 0:
        print("error: --tolerance must be positive", file=sys.stderr)
        return 2
    try:
        with open(bench_path, encoding="utf-8") as handle:
            fresh = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {bench_path}: {exc}", file=sys.stderr)
        return 2
    try:
        base = _load_baseline(bench_path, baseline)
    except (
        OSError,
        json.JSONDecodeError,
        subprocess.SubprocessError,
    ) as exc:
        print(f"error: cannot read baseline: {exc}", file=sys.stderr)
        return 2

    fresh_times = _timing_keys(fresh)
    base_times = _timing_keys(base)
    shared = sorted(set(fresh_times) & set(base_times))
    if not shared:
        print(
            "error: no shared timing keys between fresh record and baseline",
            file=sys.stderr,
        )
        return 2
    only_base = sorted(set(base_times) - set(fresh_times))
    if only_base:
        print(
            f"note: {len(only_base)} baseline timing key(s) absent from the "
            f"fresh record: {', '.join(only_base[:5])}"
            + (" ..." if len(only_base) > 5 else "")
        )

    regressions: list[list[str]] = []
    rows: list[list[str]] = []
    for key in shared:
        fresh_s, base_s = fresh_times[key], base_times[key]
        limit = base_s * tolerance
        verdict = "ok" if fresh_s <= limit else "REGRESSION"
        row = [
            key,
            f"{base_s:.4f}",
            f"{fresh_s:.4f}",
            f"{fresh_s / base_s:.2f}x" if base_s else "inf",
            verdict,
        ]
        rows.append(row)
        if verdict != "ok":
            regressions.append(row)
    print(
        _table(
            ["timing key", "baseline s", "fresh s", "ratio", "verdict"],
            rows,
            title=(
                f"bench gate: {bench_path} vs "
                f"{baseline or 'git:HEAD'} (tolerance {tolerance:g}x)"
            ),
        )
    )
    if regressions:
        print(
            f"\nFAIL: {len(regressions)} timing key(s) exceed "
            f"{tolerance:g}x the baseline",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: {len(shared)} timing key(s) within {tolerance:g}x baseline")
    return 0


def obs_main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro obs``."""
    args = build_obs_parser().parse_args(argv)
    if args.command == "list":
        return _list_main(
            args.files, args.as_json, args.limit, campaign=args.campaign
        )
    if args.command == "html":
        return _html_main(args.manifests, args.out, args.last)
    if args.command == "diff":
        return _diff_main(args.file, args.indices)
    return _check_bench_main(args.bench, args.baseline, args.tolerance)
