"""Run manifests: one diffable JSON-lines record of an experiment run.

A manifest captures everything needed to compare two runs of the pipeline —
which configuration ran (and its hash), on which code (``git describe``),
where the time went (stage timings from the span collector), what the
instruments counted, and what came out (fitted ``(R, theta_max)``, final
``T``/``theta``/``DL``).

Serialisation is JSON-lines: the first line is the ``manifest`` record, then
one ``span`` line per top-level span and one ``metrics`` line with the
instrument snapshot.  Line-oriented records make trace files appendable
(many runs in one file) and mineable with standard tools.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import TraceCollector

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "config_to_dict",
    "config_hash",
    "git_describe",
    "read_manifests",
]

MANIFEST_SCHEMA_VERSION = 1


def _jsonable(value: object) -> object:
    """Best-effort conversion to a JSON-serialisable value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    return repr(value)


def config_to_dict(config: object) -> dict[str, object]:
    """Flatten a (dataclass) configuration into JSON-able key/values."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return {
            f.name: _jsonable(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
    if isinstance(config, dict):
        return {str(k): _jsonable(v) for k, v in config.items()}
    raise TypeError(f"cannot serialise config of type {type(config).__name__}")


def config_hash(config: object) -> str:
    """Stable short hash identifying a configuration (for run diffing)."""
    payload = json.dumps(config_to_dict(config), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def git_describe(cwd: str | None = None) -> str | None:
    """``git describe --always --dirty`` of the working tree, or None."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            timeout=5.0,
            cwd=cwd,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class RunManifest:
    """All the facts of one pipeline run, ready to serialise."""

    benchmark: str
    config: dict[str, object] = field(default_factory=dict)
    config_hash: str = ""
    seed: int | None = None
    git: str | None = None
    cache: str | None = None  # "hit" | "miss" | None (not recorded)
    #: Fault-simulation engine descriptor: name ("serial"/"parallel"),
    #: word width, worker count.  Empty when not recorded.
    engine: dict[str, object] = field(default_factory=dict)
    #: Resilience record of the run: stages restored vs recomputed from
    #: checkpoints, engine degradation and salvage counts.  Empty when the
    #: run had nothing to report (no checkpointing, no degradation).
    resilience: dict[str, object] = field(default_factory=dict)
    #: span name -> cumulative wall seconds.
    stage_timings: dict[str, float] = field(default_factory=dict)
    #: Top-level span trees (nested records).
    spans: list[dict] = field(default_factory=list)
    metrics: dict[str, dict] = field(default_factory=dict)
    #: Fitted and measured outcomes: R, theta_max, final T / theta / DL, ...
    results: dict[str, object] = field(default_factory=dict)
    #: Sampled per-run curves for the HTML dashboard: coverage/DL series
    #: over vector count, the fitted eq.-11 DL(T) curve, the n-detection
    #: depth histogram.  Empty when not recorded (older manifests).
    curves: dict[str, object] = field(default_factory=dict)
    #: Cost-attribution snapshot (``repro.obs.attribution``): kernel work
    #: counters by stage and cone bucket, per-stage wall seconds, optional
    #: memory peaks, and the wall-time reconciliation.  Empty when the run
    #: was not attributed.
    attribution: dict[str, object] = field(default_factory=dict)
    schema: int = MANIFEST_SCHEMA_VERSION

    # -- construction -------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        config: object,
        collector: "TraceCollector | None" = None,
        registry: "MetricsRegistry | None" = None,
        results: dict[str, object] | None = None,
        cache: str | None = None,
        engine: dict[str, object] | None = None,
        resilience: dict[str, object] | None = None,
        curves: dict[str, object] | None = None,
        attribution: dict[str, object] | None = None,
    ) -> "RunManifest":
        """Assemble a manifest from a config and the observability state."""
        config_d = config_to_dict(config)
        manifest = cls(
            benchmark=str(config_d.get("benchmark", "?")),
            config=config_d,
            config_hash=config_hash(config),
            seed=config_d.get("seed") if isinstance(config_d.get("seed"), int) else None,
            git=git_describe(),
            cache=cache,
            engine=_jsonable(engine or {}),
            resilience=_jsonable(resilience or {}),
            results=_jsonable(results or {}),
            curves=_jsonable(curves or {}),
            attribution=_jsonable(attribution or {}),
        )
        if collector is not None:
            manifest.stage_timings = {
                name: round(seconds, 6)
                for name, seconds in sorted(collector.stage_timings().items())
            }
            manifest.spans = [root.to_record() for root in collector.roots]
        if registry is not None:
            manifest.metrics = registry.snapshot()
        return manifest

    # -- serialisation ------------------------------------------------------
    def to_records(self) -> list[dict]:
        """The JSON-lines records: manifest first, then spans, then metrics."""
        records: list[dict] = [
            {
                "type": "manifest",
                "schema": self.schema,
                "benchmark": self.benchmark,
                "config": self.config,
                "config_hash": self.config_hash,
                "seed": self.seed,
                "git": self.git,
                "cache": self.cache,
                "engine": self.engine,
                "resilience": self.resilience,
                "stage_timings": self.stage_timings,
                "results": self.results,
            }
        ]
        # Optional sections stay absent when empty: older readers (and the
        # diff tool) see exactly the records they always saw.
        if self.curves:
            records[0]["curves"] = self.curves
        if self.attribution:
            records[0]["attribution"] = self.attribution
        records.extend({"type": "span", **span} for span in self.spans)
        if self.metrics:
            records.append({"type": "metrics", **self.metrics})
        return records

    def write(self, path: str, append: bool = True) -> int:
        """Serialise to ``path`` as JSON-lines; returns the record count."""
        records = self.to_records()
        mode = "a" if append else "w"
        with open(path, mode, encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        return len(records)

    @classmethod
    def from_records(cls, records: list[dict]) -> "RunManifest":
        """Rebuild a manifest from parsed JSON-lines records."""
        head = next(r for r in records if r.get("type") == "manifest")
        manifest = cls(
            benchmark=head.get("benchmark", "?"),
            config=head.get("config", {}),
            config_hash=head.get("config_hash", ""),
            seed=head.get("seed"),
            git=head.get("git"),
            cache=head.get("cache"),
            engine=head.get("engine", {}),
            resilience=head.get("resilience", {}),
            stage_timings=head.get("stage_timings", {}),
            results=head.get("results", {}),
            curves=head.get("curves", {}),
            attribution=head.get("attribution", {}),
            schema=head.get("schema", MANIFEST_SCHEMA_VERSION),
        )
        manifest.spans = [
            {k: v for k, v in r.items() if k != "type"}
            for r in records
            if r.get("type") == "span"
        ]
        metrics = [r for r in records if r.get("type") == "metrics"]
        if metrics:
            manifest.metrics = {
                k: v for k, v in metrics[-1].items() if k != "type"
            }
        return manifest


def read_manifests(path: str) -> list[RunManifest]:
    """Parse every manifest in a JSON-lines trace file (appended runs ok).

    Corrupt or truncated lines — the torn final record of a run killed
    mid-write is the common case — are skipped with a :class:`RuntimeWarning`
    naming the line number, so one bad record never makes a whole history
    file unreadable.
    """
    groups: list[list[dict]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                warnings.warn(
                    f"{path}:{lineno}: skipping corrupt/truncated manifest "
                    f"record ({exc})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(record, dict):
                warnings.warn(
                    f"{path}:{lineno}: skipping non-record JSON line "
                    f"({type(record).__name__})",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if record.get("type") == "manifest" or not groups:
                groups.append([])
            groups[-1].append(record)
    return [
        RunManifest.from_records(group)
        for group in groups
        if any(r.get("type") == "manifest" for r in group)
    ]
