"""Hierarchical spans with wall/CPU timing.

A *span* measures one named region of work::

    with span("fault_sim", benchmark="c432"):
        ...

Spans nest: a span opened while another is active on the same thread becomes
its child, so a run produces a timing *tree* (rendered by
:mod:`repro.obs.report`).  The collector is thread-safe — each thread keeps
its own active-span stack, and finished root spans are appended to a shared
list under a lock.

By default no collector is installed and :func:`span` returns a shared no-op
context manager: the disabled path is a single attribute check plus a
dictionary-free return, so instrumented code costs nothing in production
runs.  Enable collection with :func:`repro.obs.enable` (the CLI does it for
``--profile``/``--trace``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Span", "TraceCollector", "NULL_SPAN"]


@dataclass
class Span:
    """One finished (or in-flight) timing region."""

    name: str
    attributes: dict[str, object] = field(default_factory=dict)
    start_wall: float = 0.0
    start_cpu: float = 0.0
    end_wall: float | None = None
    end_cpu: float | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_time(self) -> float:
        """Elapsed wall-clock seconds (0.0 while still open)."""
        if self.end_wall is None:
            return 0.0
        return self.end_wall - self.start_wall

    @property
    def cpu_time(self) -> float:
        """Elapsed thread-CPU seconds (0.0 while still open)."""
        if self.end_cpu is None:
            return 0.0
        return self.end_cpu - self.start_cpu

    @property
    def self_wall_time(self) -> float:
        """Wall time not accounted for by child spans."""
        return max(0.0, self.wall_time - sum(c.wall_time for c in self.children))

    def iter_tree(self):
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def to_record(self) -> dict:
        """JSON-able representation (children recursively included).

        ``t0``/``t1`` are the raw ``time.perf_counter()`` endpoints.  On one
        machine they share a timebase across processes (CLOCK_MONOTONIC), so
        worker-process span records can be rebuilt next to parent spans and
        laid out on a common timeline (the Chrome-trace exporter relies on
        this; see :mod:`repro.obs.export`).
        """
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "wall_s": round(self.wall_time, 6),
            "cpu_s": round(self.cpu_time, 6),
            "t0": self.start_wall,
            "t1": self.end_wall,
            "children": [c.to_record() for c in self.children],
        }

    @classmethod
    def from_record(cls, record: dict) -> "Span":
        """Rebuild a span (tree) from a :meth:`to_record` dictionary.

        Records from older manifests may lack the ``t0``/``t1`` endpoints;
        those spans are placed at origin with the recorded durations so
        ``wall_time``/``cpu_time`` still answer correctly.
        """
        start_wall = record.get("t0")
        end_wall = record.get("t1")
        if start_wall is None or end_wall is None:
            start_wall = 0.0
            end_wall = float(record.get("wall_s", 0.0))
        span = cls(
            name=str(record.get("name", "?")),
            attributes=dict(record.get("attributes", {})),
            start_wall=float(start_wall),
            start_cpu=0.0,
            end_wall=float(end_wall),
            end_cpu=float(record.get("cpu_s", 0.0)),
        )
        span.children = [
            cls.from_record(child) for child in record.get("children", [])
        ]
        return span


class _NullSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self


#: The singleton returned by ``obs.span(...)`` while collection is disabled.
NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager driving one live span inside a collector."""

    __slots__ = ("_collector", "span")

    def __init__(self, collector: "TraceCollector", span: Span):
        self._collector = collector
        self.span = span

    def set(self, **attributes: object) -> "_ActiveSpan":
        """Attach attributes to the live span; chainable."""
        self.span.attributes.update(attributes)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._collector._push(self.span)
        self.span.start_wall = time.perf_counter()
        self.span.start_cpu = _thread_cpu()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.span.end_wall = time.perf_counter()
        self.span.end_cpu = _thread_cpu()
        self._collector._pop(self.span)
        return False


def _thread_cpu() -> float:
    try:
        return time.thread_time()
    except (AttributeError, OSError):  # pragma: no cover - exotic platforms
        return time.process_time()


class TraceCollector:
    """Thread-safe in-process span collector.

    Per-thread active stacks provide nesting; completed top-level spans land
    in :attr:`roots` (shared, lock-protected).
    """

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- span lifecycle -----------------------------------------------------
    def start(self, name: str, attributes: dict[str, object]) -> _ActiveSpan:
        """Create a span; entering the returned context manager starts it."""
        return _ActiveSpan(self, Span(name=name, attributes=attributes))

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # unbalanced exit: drop through to it
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if not stack:
            with self._lock:
                self.roots.append(span)

    def attach(self, span: Span) -> None:
        """Graft an already-finished span under the calling thread's live span.

        Used to merge spans recorded elsewhere — a worker process's chunk
        spans, rebuilt with :meth:`Span.from_record` — into this collector's
        tree.  With no span active on the calling thread the graft becomes a
        new root.
        """
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    # -- queries ------------------------------------------------------------
    def all_spans(self) -> list[Span]:
        """Every finished span, depth-first across all roots."""
        with self._lock:
            roots = list(self.roots)
        out: list[Span] = []
        for root in roots:
            out.extend(root.iter_tree())
        return out

    def find(self, name: str) -> list[Span]:
        """All finished spans with the given name."""
        return [s for s in self.all_spans() if s.name == name]

    def stage_timings(self) -> dict[str, float]:
        """name -> cumulative wall seconds over every span of that name."""
        timings: dict[str, float] = {}
        for s in self.all_spans():
            timings[s.name] = timings.get(s.name, 0.0) + s.wall_time
        return timings
