"""Streaming pipeline events: pub/sub bus, typed events, sinks and renderer.

Long fault-simulation and ATPG campaigns give no signal while they run —
spans and counters only materialise *after* a stage finishes.  The event bus
closes that gap: instrumented code publishes small typed events **while
working**, and any number of subscribers consume them live:

* :class:`JsonlEventSink` — one JSON object per line, flushed per event, for
  machine consumption (``--events FILE``; tail it during a run);
* :class:`ProgressRenderer` — a dependency-free terminal renderer
  (``--progress``): patterns applied, faults remaining, detection rate,
  chunk completions and an ETA from an EWMA of chunk latencies;
* :class:`ListSink` — in-memory capture, used by the Chrome-trace exporter
  to place retry/checkpoint instant events on the timeline, and by tests.

Like spans and metrics, events are **zero-cost when disabled**: with no bus
installed ``obs.emit`` early-returns after one module-global check, and call
sites inside loops guard event *construction* behind
``obs.events_enabled()``.  Event publication is low-frequency by design —
per stage, per chunk, per pattern batch — never per pattern or per fault.

Every event carries two clocks: ``ts`` (``time.time()``, for humans and
cross-machine logs) and ``ts_mono`` (``time.perf_counter()``, the clock
spans use, so exporters can align events with span timelines).
"""

from __future__ import annotations

import json
import sys
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, TextIO

__all__ = [
    "Event",
    "ProgressEvent",
    "StageEvent",
    "RetryEvent",
    "CheckpointEvent",
    "CampaignEvent",
    "JobEvent",
    "EventBus",
    "JsonlEventSink",
    "ListSink",
    "BoundedEventBuffer",
    "ProgressRenderer",
    "event_from_record",
    "read_event_envelopes",
]


@dataclass
class Event:
    """Base event: a name, two clocks, free-form extras."""

    ts: float = field(default=0.0, kw_only=True)
    ts_mono: float = field(default=0.0, kw_only=True)

    def __post_init__(self) -> None:
        if not self.ts:
            self.ts = time.time()
        if not self.ts_mono:
            self.ts_mono = time.perf_counter()

    @property
    def type(self) -> str:
        return type(self).__name__

    def to_record(self) -> dict:
        """JSON-able representation; ``type`` discriminates on the wire."""
        record: dict = {"type": self.type}
        for key, value in self.__dict__.items():
            record[key] = value
        return record


@dataclass
class ProgressEvent(Event):
    """Incremental progress of one stage: ``completed`` of ``total`` units.

    ``total`` may be None for open-ended work (e.g. PODEM's target list
    shrinks as vectors retire several faults).  ``data`` carries stage
    telemetry for renderers: ``faults_remaining``, ``detection_rate``,
    ``chunk_id``, ``latency_s``, ``worker_pid``, ...
    """

    stage: str = "?"
    completed: float = 0.0
    total: float | None = None
    unit: str = ""
    data: dict = field(default_factory=dict)


@dataclass
class StageEvent(Event):
    """A named stage started or finished (``status``: "start" | "end")."""

    stage: str = "?"
    status: str = "start"
    wall_s: float | None = None
    data: dict = field(default_factory=dict)


@dataclass
class RetryEvent(Event):
    """A transiently-failed unit of work is being retried."""

    point: str = "?"
    key: object = None
    attempt: int = 0
    reason: str = ""
    delay_s: float = 0.0


@dataclass
class CheckpointEvent(Event):
    """A pipeline checkpoint was saved, restored, or found corrupt."""

    stage: str = "?"
    action: str = "save"  # "save" | "restore" | "corrupt"
    path: str | None = None


@dataclass
class CampaignEvent(Event):
    """A campaign job changed state under the supervisor.

    ``action``: ``"lease"`` | ``"done"`` | ``"cached"`` | ``"reclaim"`` |
    ``"quarantine"`` | ``"degrade"`` | ``"stop"``.  ``job`` is the config
    hash (``"-"`` for campaign-wide actions); ``data`` carries the action's
    detail (``attempt``, ``result_sha``, ``reason``, ``workers``, ...).
    """

    job: str = "?"
    action: str = "lease"
    data: dict = field(default_factory=dict)


@dataclass
class JobEvent(Event):
    """A worker-side event re-published by the campaign supervisor.

    Pool workers publish ordinary events (:class:`ProgressEvent`,
    :class:`StageEvent`, :class:`RetryEvent`, ...) on their own in-process
    bus; the supervisor ships them back and re-publishes each one wrapped in
    a ``JobEvent`` carrying the campaign coordinates the worker cannot know:
    ``job`` (the job id), ``config_hash`` and ``worker_pid``.  ``inner`` is
    the original event's :meth:`Event.to_record` dictionary, and the
    wrapper's ``ts``/``ts_mono`` mirror the inner clocks so renderers and
    trace exporters keep the worker's own timeline.
    """

    job: str = "?"
    config_hash: str = ""
    worker_pid: int | None = None
    inner: dict = field(default_factory=dict)

    @property
    def inner_type(self) -> str:
        """Type name of the wrapped event record (``"ProgressEvent"``...)."""
        return str(self.inner.get("type", "Event"))

    def inner_event(self) -> Event:
        """Rebuild the wrapped event as its original typed class."""
        return event_from_record(dict(self.inner))


_EVENT_TYPES: dict[str, type[Event]] = {
    cls.__name__: cls
    for cls in (
        ProgressEvent,
        StageEvent,
        RetryEvent,
        CheckpointEvent,
        CampaignEvent,
        JobEvent,
    )
}


def event_from_record(record: dict) -> Event:
    """Rebuild a typed event from a :meth:`Event.to_record` dictionary."""
    kind = _EVENT_TYPES.get(str(record.get("type")), None)
    fields = {k: v for k, v in record.items() if k != "type"}
    if kind is None:
        return Event(
            ts=float(fields.get("ts", 0.0)),
            ts_mono=float(fields.get("ts_mono", 0.0)),
        )
    return kind(**fields)


class EventBus:
    """Thread-safe fan-out of events to subscriber callbacks.

    A subscriber that raises is dropped after a one-line warning — a broken
    sink must never take the pipeline down with it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: list[Callable[[Event], None]] = []
        self.published = 0

    def subscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Event], None]) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def publish(self, event: Event) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
            self.published += 1
        dead: list[Callable[[Event], None]] = []
        for callback in subscribers:
            try:
                callback(event)
            except Exception as exc:
                warnings.warn(
                    f"event subscriber {callback!r} raised {exc!r}; "
                    "unsubscribing it",
                    RuntimeWarning,
                    stacklevel=2,
                )
                dead.append(callback)
        if dead:
            with self._lock:
                for callback in dead:
                    if callback in self._subscribers:
                        self._subscribers.remove(callback)


class ListSink:
    """Collect every published event in order (in-memory)."""

    def __init__(self, bus: EventBus | None = None):
        self.events: list[Event] = []
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event: Event) -> None:
        self.events.append(event)


class JsonlEventSink:
    """Append each event to ``path`` as one JSON line, flushed immediately.

    Flushing per event keeps the file tailable while the run is alive; the
    volume is low (events are per stage / chunk / batch).  Close the sink to
    release the handle; a closed sink silently discards.
    """

    def __init__(self, path: str, bus: EventBus | None = None):
        self.path = path
        self._handle: TextIO | None = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self.written = 0
        if bus is not None:
            bus.subscribe(self)

    def __call__(self, event: Event) -> None:
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(
                json.dumps(event.to_record(), sort_keys=True, default=repr)
                + "\n"
            )
            self._handle.flush()
            self.written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


class BoundedEventBuffer:
    """Bus subscriber shipping events through a JSONL envelope file.

    The worker half of the campaign event bridge: subscribe one of these to
    a worker's in-process bus and it appends *envelope* lines to ``path`` —

    ``{"tags": {...}, "dropped": N, "events": [<event records>...]}``

    with three hard guarantees:

    * **Bounded memory** — at most ``capacity`` records buffer between
      flushes; overflow drops the *oldest* record (the newest state is the
      interesting one for progress telemetry) and counts it.
    * **Bounded I/O** — an envelope is written at most once per
      ``min_interval`` seconds, or immediately once ``flush_size`` records
      are waiting, whichever comes first.  Each envelope is a single
      ``write`` of one line, so a reader consuming only newline-terminated
      lines never sees a torn envelope.
    * **Loss is never silent** — ``dropped`` carries the *cumulative* drop
      count on every envelope, and :meth:`close` always writes a final
      envelope (even an empty one) so the reader sees the final total.
    """

    def __init__(
        self,
        path: str,
        tags: dict | None = None,
        capacity: int = 512,
        min_interval: float = 0.25,
        flush_size: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.path = path
        self.tags = dict(tags or {})
        self.capacity = capacity
        self.min_interval = min_interval
        self.flush_size = max(1, flush_size)
        self.dropped = 0
        self.envelopes_written = 0
        self._clock = clock
        self._records: list[dict] = []
        self._last_flush = clock()
        self._lock = threading.Lock()
        self._handle: TextIO | None = None
        self._closed = False

    def __call__(self, event: Event) -> None:
        with self._lock:
            if self._closed:
                return
            self._records.append(event.to_record())
            if len(self._records) > self.capacity:
                overflow = len(self._records) - self.capacity
                del self._records[:overflow]
                self.dropped += overflow
            now = self._clock()
            if (
                len(self._records) >= self.flush_size
                or now - self._last_flush >= self.min_interval
            ):
                self._flush_locked(now)

    def _flush_locked(self, now: float) -> None:
        envelope = {
            "tags": self.tags,
            "dropped": self.dropped,
            "events": self._records,
        }
        line = json.dumps(envelope, sort_keys=True, default=repr) + "\n"
        try:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line)
            self._handle.flush()
        except OSError:
            # A dead channel must never take the worker down; the records
            # stay counted as dropped so the loss is still visible.
            self.dropped += len(self._records)
        else:
            self.envelopes_written += 1
        self._records = []
        self._last_flush = now

    def flush(self) -> None:
        """Force the buffered records out regardless of throttling."""
        with self._lock:
            if not self._closed:
                self._flush_locked(self._clock())

    def close(self) -> None:
        """Flush a final envelope (always, publishing the final drop count)."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked(self._clock())
            self._closed = True
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_event_envelopes(
    path: str, offset: int = 0
) -> tuple[list[dict], int]:
    """Parse complete envelope lines from ``path`` starting at ``offset``.

    The supervisor half of the event bridge: returns ``(envelopes,
    new_offset)`` where ``new_offset`` covers exactly the newline-terminated
    lines consumed — a torn tail (a flush racing the read, or a killed
    writer) is left for the next call.  Unparsable *complete* lines are
    skipped: the channel is advisory telemetry, never state.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    chunk = data[: end + 1]
    envelopes: list[dict] = []
    for raw in chunk.splitlines():
        try:
            envelope = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(envelope, dict):
            envelopes.append(envelope)
    return envelopes, offset + len(chunk)


def _fmt_eta(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class ProgressRenderer:
    """Terminal renderer for the live event stream (``--progress``).

    On a TTY, progress lines redraw in place (carriage return); otherwise
    each update prints on its own line, throttled to at most one line per
    ``min_interval`` seconds per stage so CI logs stay readable.  Stage
    starts/ends, retries and checkpoint actions always get their own line.

    The ETA is computed from an exponentially-weighted moving average of
    chunk latencies (``alpha`` weighting the newest sample): remaining
    units x EWMA latency / concurrency.  For stages reporting no latency it
    falls back to the observed completion rate.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        alpha: float = 0.4,
        min_interval: float = 0.5,
    ):
        self.stream = stream if stream is not None else sys.stderr
        self.alpha = alpha
        self.min_interval = min_interval
        self._ewma: dict[str, float] = {}
        self._first_seen: dict[str, float] = {}
        self._last_printed: dict[str, float] = {}
        self._line_open = False
        try:
            self._tty = bool(self.stream.isatty())
        except (AttributeError, ValueError):
            self._tty = False

    # -- formatting ---------------------------------------------------------
    def _eta(self, event: ProgressEvent) -> float | None:
        if event.total is None or event.completed <= 0:
            return None
        remaining = max(0.0, event.total - event.completed)
        if not remaining:
            return 0.0
        latency = event.data.get("latency_s")
        if isinstance(latency, (int, float)) and latency >= 0:
            previous = self._ewma.get(event.stage)
            ewma = (
                float(latency)
                if previous is None
                else self.alpha * float(latency) + (1 - self.alpha) * previous
            )
            self._ewma[event.stage] = ewma
            concurrency = max(1, int(event.data.get("workers", 1) or 1))
            return remaining * ewma / concurrency
        first = self._first_seen.setdefault(event.stage, event.ts_mono)
        elapsed = event.ts_mono - first
        if elapsed <= 0:
            return None
        rate = event.completed / elapsed
        return remaining / rate if rate > 0 else None

    def _progress_line(self, event: ProgressEvent) -> str:
        parts = [f"[{event.stage}]"]
        if event.total is not None:
            parts.append(
                f"{event.completed:g}/{event.total:g} {event.unit}".rstrip()
            )
        else:
            parts.append(f"{event.completed:g} {event.unit}".rstrip())
        remaining = event.data.get("faults_remaining")
        if remaining is not None:
            parts.append(f"{remaining} faults left")
        rate = event.data.get("detection_rate")
        if rate is not None:
            parts.append(f"{100.0 * float(rate):.1f}% detected")
        chunk = event.data.get("chunk_id")
        if chunk is not None:
            parts.append(f"chunk {chunk} done")
        eta = self._eta(event)
        if eta is not None and eta > 0:
            parts.append(f"eta {_fmt_eta(eta)}")
        return " | ".join(parts)

    # -- output -------------------------------------------------------------
    def _write_line(self, text: str, transient: bool) -> None:
        if self._tty:
            # Clear any in-place progress line before a permanent line.
            prefix = "\r\x1b[2K" if self._line_open else ""
            end = "" if transient else "\n"
            self.stream.write(f"{prefix}{text}{end}")
            self._line_open = transient
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def __call__(self, event: Event) -> None:
        if isinstance(event, ProgressEvent):
            now = event.ts_mono
            finished = (
                event.total is not None and event.completed >= event.total
            )
            last = self._last_printed.get(event.stage)
            if (
                not self._tty
                and not finished
                and last is not None
                and now - last < self.min_interval
            ):
                return
            self._last_printed[event.stage] = now
            self._write_line(self._progress_line(event), transient=self._tty)
        elif isinstance(event, StageEvent):
            if event.status == "start":
                self._write_line(f"[{event.stage}] started", transient=False)
            else:
                duration = (
                    f" in {event.wall_s:.2f}s" if event.wall_s is not None else ""
                )
                detail = ""
                if event.data:
                    detail = "  (" + ", ".join(
                        f"{k}={v}" for k, v in sorted(event.data.items())
                    ) + ")"
                self._write_line(
                    f"[{event.stage}] done{duration}{detail}", transient=False
                )
        elif isinstance(event, RetryEvent):
            self._write_line(
                f"[retry] {event.point} key={event.key} "
                f"attempt={event.attempt} after {event.delay_s:.2f}s: "
                f"{event.reason}",
                transient=False,
            )
        elif isinstance(event, CheckpointEvent):
            self._write_line(
                f"[checkpoint] {event.action} {event.stage}", transient=False
            )
        elif isinstance(event, CampaignEvent):
            detail = ""
            if event.data:
                detail = "  (" + ", ".join(
                    f"{k}={v}" for k, v in sorted(event.data.items())
                ) + ")"
            self._write_line(
                f"[campaign] {event.action} {event.job}{detail}",
                transient=False,
            )
        elif isinstance(event, JobEvent):
            # Worker telemetry re-published by a campaign supervisor: render
            # the wrapped event under a short job-id prefix, throttled like
            # plain progress so a wide fleet stays readable.
            now = event.ts_mono
            key = f"job:{event.job}"
            last = self._last_printed.get(key)
            if (
                not self._tty
                and last is not None
                and now - last < self.min_interval
            ):
                return
            self._last_printed[key] = now
            inner = event.inner_event()
            if isinstance(inner, ProgressEvent):
                text = self._progress_line(inner)
            else:
                text = f"[{inner.type}]"
                stage = getattr(inner, "stage", None)
                if stage:
                    text = f"[{stage}] {inner.type}"
            self._write_line(
                f"({event.job[:10]}) {text}", transient=self._tty
            )

    def close(self) -> None:
        """Terminate a dangling in-place progress line."""
        if self._tty and self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False
