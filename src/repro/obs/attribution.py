"""Cost attribution: where the simulation kernel actually spends its work.

Wall-clock profiles (:mod:`repro.obs.trace`) say *which stage* is slow; this
module says *why* — how many gate evaluations the fault-simulation kernel
executed, over which cone sizes, how many packed-pattern words moved, how
fast the fault list drained per pattern block, and (opt-in) how much memory
each pipeline stage peaked at.  It exists to aim the numpy re-platforming of
the inner loop (see ROADMAP: *native-speed kernel*): optimisation follows
measurement, and these counters are the measurement.

Design rules, shared with the rest of :mod:`repro.obs`:

* **stdlib-only** — no third-party imports;
* **off by default, zero overhead when off** — instrumented code fetches the
  collector once per run (one module-global read) and skips all accounting
  when it is ``None``;
* **cheap when on** — the kernel hooks are O(1) per pattern group plus O(1)
  per dropped fault (running bucket sums, never a per-fault-per-group
  branch), so enabling attribution costs under 2 % of kernel wall time
  (guarded by ``benchmarks/test_perf_attribution.py``).

Everything is stored as a flat ``dotted-key -> int`` counter map so worker
processes can ship plain deltas (merged additively, like the obs counter
envelope) — plus two small non-counter maps: per-stage wall seconds and
per-stage ``tracemalloc`` peaks (merged by max).

Key families:

``stage.<component>.<quantity>``
    Kernel work counters — ``stage.fault_sim.gate_evals`` (faulty-machine
    gate evaluations), ``.good_gate_evals`` (fault-free passes),
    ``.words_simulated`` (packed words written through gate ops),
    ``.pattern_blocks`` / ``.pattern_bytes`` (packed groups processed and
    their input-word footprint).
``cone.<bucket>.<quantity>``
    The same gate-eval mass, bucketed by compiled cone size
    (``cone.le_0016.gate_evals``, ``cone.le_0016.faults``) — the histogram
    that says whether time goes to many small cones or few huge ones.
``block.<index>.faults_dropped``
    Faults dropped per packed pattern block: the drain curve of the active
    fault list, i.e. how quickly fault dropping pays off.

Per-run totals are *work-additive*: a parallel run's merged counters count
the work actually executed, so the (deliberate) redundancy of the fan-out —
every chunk re-simulates the fault-free machine — is visible rather than
hidden, which is exactly what a cost model needs.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from bisect import bisect_left

__all__ = [
    "AttributionCollector",
    "CONE_BUCKET_EDGES",
    "N_CONE_BUCKETS",
    "cone_bucket_index",
    "cone_bucket_label",
    "enable",
    "disable",
    "is_enabled",
    "collector",
    "stage",
]

#: Upper (inclusive) cone-size edge of each bucket; one overflow bucket past
#: the last edge.  Log-spaced: cone sizes spread over orders of magnitude.
CONE_BUCKET_EDGES: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512, 1024)

N_CONE_BUCKETS = len(CONE_BUCKET_EDGES) + 1

_BUCKET_LABELS: tuple[str, ...] = tuple(
    f"le_{edge:04d}" for edge in CONE_BUCKET_EDGES
) + (f"gt_{CONE_BUCKET_EDGES[-1]:04d}",)


def cone_bucket_index(size: int) -> int:
    """Bucket index of a compiled cone of ``size`` gates."""
    return bisect_left(CONE_BUCKET_EDGES, size)


def cone_bucket_label(index: int) -> str:
    """Human/manifest label of a cone bucket (``le_0016`` / ``gt_1024``)."""
    return _BUCKET_LABELS[index]


class AttributionCollector:
    """Thread-safe accumulator of attribution counters for one run.

    ``memory=True`` additionally records the ``tracemalloc`` peak of every
    :func:`stage` block — genuinely costly (tracemalloc slows allocation),
    hence its own opt-in on top of attribution itself.
    """

    def __init__(self, memory: bool = False):
        self.memory = memory
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}
        self._stage_wall: dict[str, float] = {}
        self._memory_peaks: dict[str, int] = {}

    # -- recording ----------------------------------------------------------
    def add(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter at ``key`` (created on first use)."""
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + amount

    def record_stage_wall(self, stage_name: str, seconds: float) -> None:
        """Accumulate wall seconds attributed to ``stage_name``."""
        with self._lock:
            self._stage_wall[stage_name] = (
                self._stage_wall.get(stage_name, 0.0) + seconds
            )

    def record_memory_peak(self, stage_name: str, peak_bytes: int) -> None:
        """Record a stage's traced-memory peak (kept as the max seen)."""
        with self._lock:
            previous = self._memory_peaks.get(stage_name, 0)
            if peak_bytes > previous:
                self._memory_peaks[stage_name] = peak_bytes

    # -- cross-process merge ------------------------------------------------
    def counter_values(self) -> dict[str, int]:
        """Point-in-time copy of every counter (for worker delta snapshots)."""
        with self._lock:
            return dict(self._counts)

    def merge_envelope(self, envelope: dict) -> None:
        """Fold a worker's attribution envelope into this collector.

        ``counters`` merge additively (they measure work actually executed);
        ``memory_peaks`` merge by max.  Unknown keys are ignored so older
        envelopes stay mergeable.
        """
        counters = envelope.get("counters", {})
        if isinstance(counters, dict):
            with self._lock:
                for key, delta in counters.items():
                    if isinstance(delta, int) and delta > 0:
                        self._counts[key] = self._counts.get(key, 0) + delta
        peaks = envelope.get("memory_peaks", {})
        if isinstance(peaks, dict):
            for stage_name, peak in peaks.items():
                if isinstance(peak, int):
                    self.record_memory_peak(str(stage_name), peak)

    # -- queries ------------------------------------------------------------
    def stage_wall_seconds(self) -> dict[str, float]:
        """stage -> attributed wall seconds (a copy)."""
        with self._lock:
            return dict(self._stage_wall)

    def snapshot(self) -> dict[str, object]:
        """JSON-able nested view: stages, cone buckets, blocks, wall, memory."""
        with self._lock:
            counts = dict(self._counts)
            stage_wall = dict(self._stage_wall)
            memory_peaks = dict(self._memory_peaks)
        stages: dict[str, dict[str, int]] = {}
        cones: dict[str, dict[str, int]] = {}
        blocks: dict[str, int] = {}
        for key, value in sorted(counts.items()):
            parts = key.split(".")
            if key.startswith("stage.") and len(parts) == 3:
                stages.setdefault(parts[1], {})[parts[2]] = value
            elif key.startswith("cone.") and len(parts) == 3:
                cones.setdefault(parts[1], {})[parts[2]] = value
            elif key.startswith("block.") and len(parts) == 3:
                blocks[parts[1]] = value
            else:
                stages.setdefault("other", {})[key] = value
        out: dict[str, object] = {
            "stages": stages,
            "cone_buckets": cones,
            "drops_per_block": blocks,
            "stage_wall_s": {
                name: round(seconds, 6)
                for name, seconds in sorted(stage_wall.items())
            },
        }
        if memory_peaks:
            out["memory_peak_bytes"] = dict(sorted(memory_peaks.items()))
        return out

    def reconcile(self, pipeline_wall_s: float) -> dict[str, object]:
        """Compare attributed stage wall time against the pipeline span wall.

        The attribution layer times stages with its own clock, independent of
        the span collector; this reconciliation is the cross-check that the
        two measurement paths agree — ``coverage`` is the fraction of the
        pipeline's span-measured wall that stage attribution accounts for
        (the acceptance bar is >= 0.9, i.e. within 10 %).
        """
        attributed = sum(self.stage_wall_seconds().values())
        coverage = (
            attributed / pipeline_wall_s if pipeline_wall_s > 0 else 0.0
        )
        return {
            "pipeline_wall_s": round(pipeline_wall_s, 6),
            "attributed_wall_s": round(attributed, 6),
            "unattributed_wall_s": round(
                max(0.0, pipeline_wall_s - attributed), 6
            ),
            "coverage": round(coverage, 6),
        }


# ---------------------------------------------------------------------------
# Module state (mirrors repro.obs: one global, no-op when absent)
# ---------------------------------------------------------------------------
_collector: AttributionCollector | None = None
_owns_tracemalloc = False


def enable(memory: bool = False) -> AttributionCollector:
    """Install a fresh collector; ``memory=True`` also traces stage peaks."""
    global _collector, _owns_tracemalloc
    _collector = AttributionCollector(memory=memory)
    if memory and not tracemalloc.is_tracing():
        tracemalloc.start()
        _owns_tracemalloc = True
    return _collector


def disable() -> None:
    """Return to the zero-overhead no-op state."""
    global _collector, _owns_tracemalloc
    if _owns_tracemalloc and tracemalloc.is_tracing():
        tracemalloc.stop()
    _owns_tracemalloc = False
    _collector = None


def is_enabled() -> bool:
    """True while a collector is installed."""
    return _collector is not None


def collector() -> AttributionCollector | None:
    """The active collector, or None when attribution is disabled.

    Kernel hooks call this once per run and skip all accounting on None —
    the disabled path costs one module-global read.
    """
    return _collector


class _StageTimer:
    """Context manager attributing one stage's wall time (and memory peak)."""

    __slots__ = ("_name", "_collector", "_t0", "_trace")

    def __init__(self, name: str, active: AttributionCollector | None):
        self._name = name
        self._collector = active
        self._t0 = 0.0
        self._trace = False

    def __enter__(self) -> "_StageTimer":
        if self._collector is not None:
            self._trace = self._collector.memory and tracemalloc.is_tracing()
            if self._trace:
                tracemalloc.reset_peak()
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._collector is not None:
            self._collector.record_stage_wall(
                self._name, time.perf_counter() - self._t0
            )
            if self._trace:
                _, peak = tracemalloc.get_traced_memory()
                self._collector.record_memory_peak(self._name, peak)
        return False


def stage(name: str) -> _StageTimer:
    """Attribute the wrapped block's wall time to ``name``.

    No-op (beyond one global read) while attribution is disabled.  With
    ``enable(memory=True)`` the block's ``tracemalloc`` peak is recorded
    too.  Stages are expected to run sequentially (the pipeline's do);
    nested use double-attributes wall time by design — same as nested spans.
    """
    return _StageTimer(name, _collector)
