"""Gate library: supported combinational gate types and their evaluation.

The library supports both scalar boolean evaluation (ints 0/1) and 64-way
parallel-pattern evaluation over Python integers used as bit vectors, which is
what the logic and fault simulators use.  All gates are the classic ISCAS-85
primitives: AND, NAND, OR, NOR, XOR, XNOR, NOT, BUF.

The same table also records the CMOS transistor cost of each gate type, used by
the standard-cell generator in :mod:`repro.layout.cells`.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from typing import Sequence

__all__ = [
    "GateType",
    "evaluate_gate",
    "evaluate_gate_packed",
    "ALL_ONES_64",
    "DEFAULT_WORD_WIDTH",
    "all_ones",
]

#: Mask of 64 set bits, the width of the classic packed simulation word.
ALL_ONES_64 = (1 << 64) - 1

#: Default packed-word width of the simulators.  Python ints are arbitrary
#: precision, so packing more patterns per word amortises interpreter
#: overhead; 256 is the sweet spot measured in ``BENCH_fault_sim.json``.
DEFAULT_WORD_WIDTH = 256


def all_ones(width: int) -> int:
    """Mask of ``width`` set bits (the all-detecting packed word)."""
    if width < 1:
        raise ValueError(f"word width must be positive, got {width}")
    return (1 << width) - 1


class GateType(str, Enum):
    """Combinational gate primitives understood by the simulators."""

    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"

    @property
    def is_inverting(self) -> bool:
        """True when the gate's output is the complement of its core function.

        Used by the standard-cell generator: inverting gates map to a single
        complementary CMOS stage, non-inverting ones need an output inverter.
        """
        return self in _INVERTING

    @property
    def min_inputs(self) -> int:
        """Smallest legal fan-in for this gate type."""
        return 1 if self in (GateType.NOT, GateType.BUF) else 2

    @property
    def max_inputs(self) -> int | None:
        """Largest legal fan-in, or None when unbounded."""
        return 1 if self in (GateType.NOT, GateType.BUF) else None

    def transistor_count(self, n_inputs: int) -> int:
        """Number of MOS transistors in the CMOS realisation of this gate.

        Static complementary CMOS: ``2 * n`` for an n-input inverting gate,
        plus an output inverter (2 transistors) for non-inverting gates.
        XOR/XNOR use the common 10/12-transistor static realisations for two
        inputs and are composed from 2-input stages above that.
        """
        if self in (GateType.NOT, GateType.BUF):
            return 2 if self is GateType.NOT else 4
        if self in (GateType.XOR, GateType.XNOR):
            # Chain of (n-1) two-input stages, 12 transistors each (static
            # complementary XOR with local input inversion), minus the final
            # inverter when the parity of inversion works out.
            base = 12 * (n_inputs - 1)
            return base if self is GateType.XOR else base + 2
        core = 2 * n_inputs
        return core if self.is_inverting else core + 2


_INVERTING = frozenset({GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR})


def _xor_reduce(values: Sequence[int]) -> int:
    return reduce(lambda a, b: a ^ b, values)


def evaluate_gate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Evaluate a gate over scalar boolean inputs (each 0 or 1).

    Parameters
    ----------
    gate_type:
        The gate primitive to evaluate.
    inputs:
        Input values, each 0 or 1.  Length must be legal for the gate type.

    Returns
    -------
    int
        The output value, 0 or 1.
    """
    _check_arity(gate_type, len(inputs))
    return evaluate_gate_packed(gate_type, inputs, mask=1)


def evaluate_gate_packed(
    gate_type: GateType, inputs: Sequence[int], mask: int = ALL_ONES_64
) -> int:
    """Evaluate a gate over packed pattern words.

    Each input is an integer whose bits carry one pattern per bit position;
    the result carries the gate output for each pattern.  ``mask`` bounds the
    word width so complements stay finite.
    """
    _check_arity(gate_type, len(inputs))
    if gate_type is GateType.AND:
        return reduce(lambda a, b: a & b, inputs)
    if gate_type is GateType.NAND:
        return mask & ~reduce(lambda a, b: a & b, inputs)
    if gate_type is GateType.OR:
        return reduce(lambda a, b: a | b, inputs)
    if gate_type is GateType.NOR:
        return mask & ~reduce(lambda a, b: a | b, inputs)
    if gate_type is GateType.XOR:
        return _xor_reduce(inputs)
    if gate_type is GateType.XNOR:
        return mask & ~_xor_reduce(inputs)
    if gate_type is GateType.NOT:
        return mask & ~inputs[0]
    if gate_type is GateType.BUF:
        return inputs[0]
    raise ValueError(f"unknown gate type: {gate_type!r}")


def _check_arity(gate_type: GateType, n: int) -> None:
    if n < gate_type.min_inputs:
        raise ValueError(
            f"{gate_type.value} needs at least {gate_type.min_inputs} inputs, got {n}"
        )
    if gate_type.max_inputs is not None and n > gate_type.max_inputs:
        raise ValueError(
            f"{gate_type.value} takes at most {gate_type.max_inputs} inputs, got {n}"
        )
