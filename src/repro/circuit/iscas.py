"""Embedded benchmark circuits.

The paper's experiment uses the ISCAS-85 **c432** benchmark (a 27-channel
interrupt controller; 36 inputs, 7 outputs, ~160 gates).  The exact netlist is
not bundled here; instead :func:`c432_like` procedurally builds a circuit of
the same class — a 27-channel, 3-group priority interrupt controller with
36 primary inputs, 7 primary outputs and a comparable gate count, logic depth
and XOR content — which preserves the testability character the experiment
depends on (see DESIGN.md, substitution table).

The exact ISCAS-85 **c17** netlist *is* bundled (it is six NAND gates and is
universally reproduced in the literature), along with a family of synthetic
generators used by tests and the ablation benches.
"""

from __future__ import annotations

from repro.circuit.bench_parser import parse_bench
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = [
    "C17_BENCH",
    "c17",
    "c432_like",
    "ripple_carry_adder",
    "parity_tree",
    "mux_tree",
    "decoder",
    "BENCHMARKS",
    "load_benchmark",
]

#: The exact ISCAS-85 c17 netlist in .bench format.
C17_BENCH = """\
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Circuit:
    """The exact ISCAS-85 c17 benchmark (5 PI, 2 PO, 6 NAND gates)."""
    return parse_bench(C17_BENCH, name="c17")


def c432_like() -> Circuit:
    """A c432-class benchmark: 27-channel, 3-group priority interrupt controller.

    Matches the published c432 interface and scale: 36 primary inputs
    (three 9-bit request buses ``A``, ``B``, ``C`` plus a 9-bit enable bus
    ``E``), 7 primary outputs (three group-grant lines ``PA``, ``PB``, ``PC``
    and a 4-bit encoded channel address), roughly 160 gates including an XOR
    layer, and a logic depth in the high teens.

    Function: group A has priority over B, which has priority over C.  A
    channel ``i`` of the winning group is granted if its request line is high
    and its enable ``E[i]`` is high; the address outputs encode the
    lowest-index granted channel of the winning group.
    """
    ckt = Circuit(name="c432_like")
    groups = ("A", "B", "C")
    a = [ckt.add_input(f"A{i}") for i in range(9)]
    b = [ckt.add_input(f"B{i}") for i in range(9)]
    c = [ckt.add_input(f"C{i}") for i in range(9)]
    e = [ckt.add_input(f"E{i}") for i in range(9)]
    bus = {"A": a, "B": b, "C": c}

    # --- Stage 1: per-channel masked requests through an XOR front layer ---
    # The original c432 contains an XOR front layer; we keep one and make it
    # load-bearing: live = E AND NOT(req XOR E) == req AND E, so every gate
    # in the chain is testable (no structural redundancy).
    masked: dict[str, list[str]] = {}
    for group in groups:
        nets = []
        for i in range(9):
            x = f"X{group}{i}"
            ckt.add_gate(GateType.XOR, [bus[group][i], e[i]], x)
            nx = f"NX{group}{i}"
            ckt.add_gate(GateType.NOT, [x], nx)
            live = f"L{group}{i}"
            ckt.add_gate(GateType.AND, [e[i], nx], live)
            nets.append(live)
        masked[group] = nets

    # --- Stage 2: group request detection (9-way OR as NAND/NAND trees) ---
    def or9(prefix: str, nets: list[str]) -> str:
        inv = []
        for i, net in enumerate(nets):
            n = f"{prefix}N{i}"
            ckt.add_gate(GateType.NOT, [net], n)
            inv.append(n)
        t0 = f"{prefix}T0"
        t1 = f"{prefix}T1"
        t2 = f"{prefix}T2"
        ckt.add_gate(GateType.NAND, inv[0:3], t0)
        ckt.add_gate(GateType.NAND, inv[3:6], t1)
        ckt.add_gate(GateType.NAND, inv[6:9], t2)
        n_or = f"{prefix}NO"
        ckt.add_gate(GateType.NOR, [t0, t1, t2], n_or)
        out = f"{prefix}OR"
        ckt.add_gate(GateType.NOT, [n_or], out)
        return out

    any_req = {group: or9(f"G{group}", masked[group]) for group in groups}

    # --- Stage 3: priority grants (A > B > C) ---
    ckt.add_gate(GateType.BUF, [any_req["A"]], "PA")
    na = "NPA"
    ckt.add_gate(GateType.NOT, [any_req["A"]], na)
    ckt.add_gate(GateType.AND, [na, any_req["B"]], "PB")
    nb = "NPB"
    ckt.add_gate(GateType.NOR, [any_req["A"], any_req["B"]], nb)
    ckt.add_gate(GateType.AND, [nb, any_req["C"]], "PC")
    for po in ("PA", "PB", "PC"):
        ckt.add_output(po)

    # --- Stage 4: select the winning group's masked request lines ---
    selected = []
    for i in range(9):
        sa = f"SA{i}"
        sb = f"SB{i}"
        sc = f"SC{i}"
        ckt.add_gate(GateType.AND, [masked["A"][i], "PA"], sa)
        ckt.add_gate(GateType.AND, [masked["B"][i], "PB"], sb)
        ckt.add_gate(GateType.AND, [masked["C"][i], "PC"], sc)
        sel = f"S{i}"
        ckt.add_gate(GateType.OR, [sa, sb, sc], sel)
        selected.append(sel)

    # --- Stage 5: 9-line priority encoder -> 4-bit channel address ---
    # Highest priority is the lowest index.  grant[i] = S_i & !S_0..!S_{i-1}
    blocked = None
    grants = []
    for i in range(9):
        if blocked is None:
            grant = selected[0]
        else:
            grant = f"GR{i}"
            ckt.add_gate(GateType.AND, [selected[i], blocked], grant)
        grants.append(grant)
        inv = f"NS{i}"
        ckt.add_gate(GateType.NOT, [selected[i]], inv)
        if blocked is None:
            blocked = inv
        else:
            new_blocked = f"BL{i}"
            ckt.add_gate(GateType.AND, [blocked, inv], new_blocked)
            blocked = new_blocked

    # Encode grant index (0..8) into 4 address bits.  The grant lines are
    # one-hot, so XOR == OR here; XOR keeps the benchmark's gate-type mix
    # close to the original c432 without changing the function.
    def encode_bit(name: str, indices: list[int]) -> None:
        ckt.add_gate(GateType.XOR, [grants[i] for i in indices], name)
        ckt.add_output(name)

    encode_bit("AD0", [1, 3, 5, 7])
    encode_bit("AD1", [2, 3, 6, 7])
    encode_bit("AD2", [4, 5, 6, 7])
    ckt.add_gate(GateType.BUF, [grants[8]], "AD3")
    ckt.add_output("AD3")

    ckt.validate()
    return ckt


def ripple_carry_adder(n_bits: int, name: str | None = None) -> Circuit:
    """An ``n``-bit ripple-carry adder: inputs A0.., B0.., CIN; outputs S.., COUT."""
    if n_bits < 1:
        raise ValueError("adder needs at least one bit")
    ckt = Circuit(name=name or f"rca{n_bits}")
    a = [ckt.add_input(f"A{i}") for i in range(n_bits)]
    b = [ckt.add_input(f"B{i}") for i in range(n_bits)]
    carry = ckt.add_input("CIN")
    for i in range(n_bits):
        p = f"P{i}"
        ckt.add_gate(GateType.XOR, [a[i], b[i]], p)
        s = f"S{i}"
        ckt.add_gate(GateType.XOR, [p, carry], s)
        ckt.add_output(s)
        g1 = f"G1_{i}"
        g2 = f"G2_{i}"
        ckt.add_gate(GateType.AND, [a[i], b[i]], g1)
        ckt.add_gate(GateType.AND, [p, carry], g2)
        cout = f"C{i + 1}"
        ckt.add_gate(GateType.OR, [g1, g2], cout)
        carry = cout
    ckt.add_output(carry)
    ckt.validate()
    return ckt


def parity_tree(n_inputs: int, name: str | None = None) -> Circuit:
    """Balanced XOR parity tree over ``n`` inputs with one output ``PAR``."""
    if n_inputs < 2:
        raise ValueError("parity tree needs at least two inputs")
    ckt = Circuit(name=name or f"par{n_inputs}")
    frontier = [ckt.add_input(f"I{i}") for i in range(n_inputs)]
    counter = 0
    while len(frontier) > 1:
        next_frontier = []
        for i in range(0, len(frontier) - 1, 2):
            out = f"X{counter}"
            counter += 1
            ckt.add_gate(GateType.XOR, [frontier[i], frontier[i + 1]], out)
            next_frontier.append(out)
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    final = "PAR"
    ckt.add_gate(GateType.BUF, [frontier[0]], final)
    ckt.add_output(final)
    ckt.validate()
    return ckt


def mux_tree(select_bits: int, name: str | None = None) -> Circuit:
    """A ``2**k``-to-1 multiplexer built from AND/OR/NOT gates."""
    if select_bits < 1:
        raise ValueError("mux needs at least one select bit")
    ckt = Circuit(name=name or f"mux{2 ** select_bits}")
    n_data = 2**select_bits
    data = [ckt.add_input(f"D{i}") for i in range(n_data)]
    sel = [ckt.add_input(f"S{i}") for i in range(select_bits)]
    nsel = []
    for i, s in enumerate(sel):
        n = f"NS{i}"
        ckt.add_gate(GateType.NOT, [s], n)
        nsel.append(n)
    terms = []
    for i in range(n_data):
        picks = [sel[j] if (i >> j) & 1 else nsel[j] for j in range(select_bits)]
        term = f"T{i}"
        ckt.add_gate(GateType.AND, [data[i], *picks], term)
        terms.append(term)
    ckt.add_gate(GateType.OR, terms, "Y")
    ckt.add_output("Y")
    ckt.validate()
    return ckt


def decoder(n_bits: int, name: str | None = None) -> Circuit:
    """An ``n``-to-``2**n`` line decoder with active-high outputs."""
    if n_bits < 1:
        raise ValueError("decoder needs at least one input bit")
    ckt = Circuit(name=name or f"dec{n_bits}")
    inputs = [ckt.add_input(f"I{i}") for i in range(n_bits)]
    ninputs = []
    for i, net in enumerate(inputs):
        n = f"NI{i}"
        ckt.add_gate(GateType.NOT, [net], n)
        ninputs.append(n)
    for code in range(2**n_bits):
        picks = [inputs[j] if (code >> j) & 1 else ninputs[j] for j in range(n_bits)]
        out = f"O{code}"
        if len(picks) == 1:
            ckt.add_gate(GateType.BUF, picks, out)
        else:
            ckt.add_gate(GateType.AND, picks, out)
        ckt.add_output(out)
    ckt.validate()
    return ckt


#: Registry of named benchmark factories for CLI-style lookup.
def _alu4():
    from repro.circuit.alu import alu4

    return alu4()


def _mul4():
    from repro.circuit.multiplier import multiplier4

    return multiplier4()


BENCHMARKS = {
    "c17": c17,
    "c432": c432_like,
    "c432_like": c432_like,
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "par16": lambda: parity_tree(16),
    "mux8": lambda: mux_tree(3),
    "dec4": lambda: decoder(4),
    "alu4": _alu4,
    "mul4": _mul4,
}


def load_benchmark(name: str) -> Circuit:
    """Instantiate a registered benchmark circuit by name."""
    try:
        return BENCHMARKS[name]()
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
