"""Embedded benchmark circuits.

The paper's experiment uses the ISCAS-85 **c432** benchmark (a 27-channel
interrupt controller; 36 inputs, 7 outputs, ~160 gates).  The exact netlist is
not bundled here; instead :func:`c432_like` procedurally builds a circuit of
the same class — a 27-channel, 3-group priority interrupt controller with
36 primary inputs, 7 primary outputs and a comparable gate count, logic depth
and XOR content — which preserves the testability character the experiment
depends on (see DESIGN.md, substitution table).

The exact ISCAS-85 **c17** netlist *is* bundled (it is six NAND gates and is
universally reproduced in the literature), along with a family of synthetic
generators used by tests and the ablation benches.
"""

from __future__ import annotations

from repro.circuit.bench_parser import parse_bench
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = [
    "C17_BENCH",
    "c17",
    "c432_like",
    "c880_like",
    "ripple_carry_adder",
    "parity_tree",
    "mux_tree",
    "decoder",
    "BENCHMARKS",
    "load_benchmark",
]

#: The exact ISCAS-85 c17 netlist in .bench format.
C17_BENCH = """\
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17() -> Circuit:
    """The exact ISCAS-85 c17 benchmark (5 PI, 2 PO, 6 NAND gates)."""
    return parse_bench(C17_BENCH, name="c17")


def c432_like() -> Circuit:
    """A c432-class benchmark: 27-channel, 3-group priority interrupt controller.

    Matches the published c432 interface and scale: 36 primary inputs
    (three 9-bit request buses ``A``, ``B``, ``C`` plus a 9-bit enable bus
    ``E``), 7 primary outputs (three group-grant lines ``PA``, ``PB``, ``PC``
    and a 4-bit encoded channel address), roughly 160 gates including an XOR
    layer, and a logic depth in the high teens.

    Function: group A has priority over B, which has priority over C.  A
    channel ``i`` of the winning group is granted if its request line is high
    and its enable ``E[i]`` is high; the address outputs encode the
    lowest-index granted channel of the winning group.
    """
    ckt = Circuit(name="c432_like")
    groups = ("A", "B", "C")
    a = [ckt.add_input(f"A{i}") for i in range(9)]
    b = [ckt.add_input(f"B{i}") for i in range(9)]
    c = [ckt.add_input(f"C{i}") for i in range(9)]
    e = [ckt.add_input(f"E{i}") for i in range(9)]
    bus = {"A": a, "B": b, "C": c}

    # --- Stage 1: per-channel masked requests through an XOR front layer ---
    # The original c432 contains an XOR front layer; we keep one and make it
    # load-bearing: live = E AND NOT(req XOR E) == req AND E, so every gate
    # in the chain is testable (no structural redundancy).
    masked: dict[str, list[str]] = {}
    for group in groups:
        nets = []
        for i in range(9):
            x = f"X{group}{i}"
            ckt.add_gate(GateType.XOR, [bus[group][i], e[i]], x)
            nx = f"NX{group}{i}"
            ckt.add_gate(GateType.NOT, [x], nx)
            live = f"L{group}{i}"
            ckt.add_gate(GateType.AND, [e[i], nx], live)
            nets.append(live)
        masked[group] = nets

    # --- Stage 2: group request detection (9-way OR as NAND/NAND trees) ---
    def or9(prefix: str, nets: list[str]) -> str:
        inv = []
        for i, net in enumerate(nets):
            n = f"{prefix}N{i}"
            ckt.add_gate(GateType.NOT, [net], n)
            inv.append(n)
        t0 = f"{prefix}T0"
        t1 = f"{prefix}T1"
        t2 = f"{prefix}T2"
        ckt.add_gate(GateType.NAND, inv[0:3], t0)
        ckt.add_gate(GateType.NAND, inv[3:6], t1)
        ckt.add_gate(GateType.NAND, inv[6:9], t2)
        n_or = f"{prefix}NO"
        ckt.add_gate(GateType.NOR, [t0, t1, t2], n_or)
        out = f"{prefix}OR"
        ckt.add_gate(GateType.NOT, [n_or], out)
        return out

    any_req = {group: or9(f"G{group}", masked[group]) for group in groups}

    # --- Stage 3: priority grants (A > B > C) ---
    ckt.add_gate(GateType.BUF, [any_req["A"]], "PA")
    na = "NPA"
    ckt.add_gate(GateType.NOT, [any_req["A"]], na)
    ckt.add_gate(GateType.AND, [na, any_req["B"]], "PB")
    nb = "NPB"
    ckt.add_gate(GateType.NOR, [any_req["A"], any_req["B"]], nb)
    ckt.add_gate(GateType.AND, [nb, any_req["C"]], "PC")
    for po in ("PA", "PB", "PC"):
        ckt.add_output(po)

    # --- Stage 4: select the winning group's masked request lines ---
    selected = []
    for i in range(9):
        sa = f"SA{i}"
        sb = f"SB{i}"
        sc = f"SC{i}"
        ckt.add_gate(GateType.AND, [masked["A"][i], "PA"], sa)
        ckt.add_gate(GateType.AND, [masked["B"][i], "PB"], sb)
        ckt.add_gate(GateType.AND, [masked["C"][i], "PC"], sc)
        sel = f"S{i}"
        ckt.add_gate(GateType.OR, [sa, sb, sc], sel)
        selected.append(sel)

    # --- Stage 5: 9-line priority encoder -> 4-bit channel address ---
    # Highest priority is the lowest index.  grant[i] = S_i & !S_0..!S_{i-1}
    blocked = None
    grants = []
    for i in range(9):
        if blocked is None:
            grant = selected[0]
        else:
            grant = f"GR{i}"
            ckt.add_gate(GateType.AND, [selected[i], blocked], grant)
        grants.append(grant)
        inv = f"NS{i}"
        ckt.add_gate(GateType.NOT, [selected[i]], inv)
        if blocked is None:
            blocked = inv
        else:
            new_blocked = f"BL{i}"
            ckt.add_gate(GateType.AND, [blocked, inv], new_blocked)
            blocked = new_blocked

    # Encode grant index (0..8) into 4 address bits.  The grant lines are
    # one-hot, so XOR == OR here; XOR keeps the benchmark's gate-type mix
    # close to the original c432 without changing the function.
    def encode_bit(name: str, indices: list[int]) -> None:
        ckt.add_gate(GateType.XOR, [grants[i] for i in indices], name)
        ckt.add_output(name)

    encode_bit("AD0", [1, 3, 5, 7])
    encode_bit("AD1", [2, 3, 6, 7])
    encode_bit("AD2", [4, 5, 6, 7])
    ckt.add_gate(GateType.BUF, [grants[8]], "AD3")
    ckt.add_output("AD3")

    ckt.validate()
    return ckt


def c880_like() -> Circuit:
    """A c880-class benchmark: 8-bit ALU with parity, flags and control decode.

    Matches the published c880 interface and scale: 60 primary inputs (two
    8-bit operands ``A``/``B``, an 8-bit compare bus ``C``, a 16-bit data bus
    ``D``, byte-select enables ``E``, a mask bus ``M`` and a 4-bit opcode
    ``K``), 26 primary outputs (8-bit result ``F``, 8-bit masked result
    ``G``, parities, zero flags, carry, compare flags and an encoded channel
    address), and a few hundred gates mixing adder carry chains, a logic
    unit, wide multiplexing and XOR parity trees — the structures that give
    c880 its fault-simulation workload.

    It is the perf-bench workhorse: large enough that the full collapsed
    stuck-at universe exercises the engine seriously, small enough to run in
    a test suite.
    """
    ckt = Circuit(name="c880_like")
    a = [ckt.add_input(f"A{i}") for i in range(8)]
    b = [ckt.add_input(f"B{i}") for i in range(8)]
    c = [ckt.add_input(f"C{i}") for i in range(8)]
    d = [ckt.add_input(f"D{i}") for i in range(16)]
    e = [ckt.add_input(f"E{i}") for i in range(8)]
    m = [ckt.add_input(f"M{i}") for i in range(8)]
    k = [ckt.add_input(f"K{i}") for i in range(4)]

    # --- control decode: 3-to-8 op select plus an invert/carry control ---
    nk = []
    for i in range(3):
        n = f"NK{i}"
        ckt.add_gate(GateType.NOT, [k[i]], n)
        nk.append(n)
    ops = []
    for code in range(8):
        picks = [k[j] if (code >> j) & 1 else nk[j] for j in range(3)]
        op = f"OP{code}"
        ckt.add_gate(GateType.AND, picks, op)
        ops.append(op)

    # --- arithmetic unit: A + (B ^ K3) with carry-in K3 (add/subtract) ---
    xb = []
    for i in range(8):
        x = f"XB{i}"
        ckt.add_gate(GateType.XOR, [b[i], k[3]], x)
        xb.append(x)
    carry = k[3]
    sums = []
    for i in range(8):
        p = f"AP{i}"
        ckt.add_gate(GateType.XOR, [a[i], xb[i]], p)
        s = f"SUM{i}"
        ckt.add_gate(GateType.XOR, [p, carry], s)
        sums.append(s)
        g1 = f"AG{i}"
        g2 = f"AH{i}"
        ckt.add_gate(GateType.AND, [a[i], xb[i]], g1)
        ckt.add_gate(GateType.AND, [p, carry], g2)
        cout = f"AC{i + 1}"
        ckt.add_gate(GateType.OR, [g1, g2], cout)
        carry = cout

    # --- logic unit: five bitwise functions of A and B ---
    unit: dict[str, list[str]] = {}
    for tag, gate_type in (
        ("ANDU", GateType.AND),
        ("ORU", GateType.OR),
        ("XORU", GateType.XOR),
        ("NANDU", GateType.NAND),
        ("NORU", GateType.NOR),
    ):
        nets = []
        for i in range(8):
            out = f"{tag}{i}"
            ckt.add_gate(gate_type, [a[i], b[i]], out)
            nets.append(out)
        unit[tag] = nets

    # --- data path: byte select from the 16-bit D bus under E ---
    md = []
    for i in range(8):
        ne = f"NE{i}"
        ckt.add_gate(GateType.NOT, [e[i]], ne)
        lo = f"DL{i}"
        hi = f"DH{i}"
        ckt.add_gate(GateType.AND, [d[i], e[i]], lo)
        ckt.add_gate(GateType.AND, [d[i + 8], ne], hi)
        sel = f"MD{i}"
        ckt.add_gate(GateType.OR, [lo, hi], sel)
        md.append(sel)

    # --- eighth source: rotate-compare of A against the C bus ---
    rt = []
    for i in range(8):
        out = f"RT{i}"
        ckt.add_gate(GateType.XOR, [a[(i + 1) % 8], c[i]], out)
        rt.append(out)

    # --- result mux: 8-way op select per bit ---
    sources = [
        sums,
        unit["ANDU"],
        unit["ORU"],
        unit["XORU"],
        unit["NANDU"],
        unit["NORU"],
        md,
        rt,
    ]
    f_bus = []
    for i in range(8):
        terms = []
        for code, src in enumerate(sources):
            t = f"FT{code}_{i}"
            ckt.add_gate(GateType.AND, [src[i], ops[code]], t)
            terms.append(t)
        out = f"F{i}"
        ckt.add_gate(GateType.OR, terms, out)
        ckt.add_output(out)
        f_bus.append(out)

    # --- masked result: G = F ^ (M & C) ---
    g_bus = []
    for i in range(8):
        mc = f"MC{i}"
        ckt.add_gate(GateType.AND, [m[i], c[i]], mc)
        out = f"G{i}"
        ckt.add_gate(GateType.XOR, [f_bus[i], mc], out)
        ckt.add_output(out)
        g_bus.append(out)

    def xor_tree(prefix: str, nets: list[str], final: str) -> None:
        frontier = list(nets)
        counter = 0
        while len(frontier) > 2:
            nxt = []
            for i in range(0, len(frontier) - 1, 2):
                out = f"{prefix}{counter}"
                counter += 1
                ckt.add_gate(GateType.XOR, [frontier[i], frontier[i + 1]], out)
                nxt.append(out)
            if len(frontier) % 2:
                nxt.append(frontier[-1])
            frontier = nxt
        ckt.add_gate(GateType.XOR, frontier, final)
        ckt.add_output(final)

    def or_tree(prefix: str, nets: list[str]) -> str:
        frontier = list(nets)
        counter = 0
        while len(frontier) > 2:
            nxt = []
            for i in range(0, len(frontier) - 1, 2):
                out = f"{prefix}{counter}"
                counter += 1
                ckt.add_gate(GateType.OR, [frontier[i], frontier[i + 1]], out)
                nxt.append(out)
            if len(frontier) % 2:
                nxt.append(frontier[-1])
            frontier = nxt
        out = f"{prefix}R"
        ckt.add_gate(GateType.OR, frontier, out)
        return out

    # --- flags: parities, zero detects, carry, compare ---
    xor_tree("PFX", f_bus, "PF")
    xor_tree("PGX", g_bus, "PG")
    ckt.add_gate(GateType.NOT, [or_tree("ZFO", f_bus)], "ZF")
    ckt.add_output("ZF")
    ckt.add_gate(GateType.NOT, [or_tree("ZGO", g_bus)], "ZG")
    ckt.add_output("ZG")
    ckt.add_gate(GateType.BUF, [carry], "COUT")
    ckt.add_output("COUT")
    eq_bits = []
    for i in range(8):
        out = f"EQB{i}"
        ckt.add_gate(GateType.XNOR, [a[i], b[i]], out)
        eq_bits.append(out)
    eq_or = or_tree("EQT", eq_bits)  # placeholder to keep tree helper shared
    ckt.add_gate(GateType.BUF, [eq_or], "ANY_EQ")
    ckt.add_output("ANY_EQ")
    and_frontier = list(eq_bits)
    counter = 0
    while len(and_frontier) > 2:
        nxt = []
        for i in range(0, len(and_frontier) - 1, 2):
            out = f"EQA{counter}"
            counter += 1
            ckt.add_gate(GateType.AND, [and_frontier[i], and_frontier[i + 1]], out)
            nxt.append(out)
        if len(and_frontier) % 2:
            nxt.append(and_frontier[-1])
        and_frontier = nxt
    ckt.add_gate(GateType.AND, and_frontier, "EQ")
    ckt.add_output("EQ")

    # --- priority encoder over the masked compare bus ---
    live = []
    for i in range(8):
        out = f"LC{i}"
        ckt.add_gate(GateType.AND, [c[i], m[i]], out)
        live.append(out)
    blocked = None
    grants = []
    for i in range(8):
        if blocked is None:
            grant = live[0]
        else:
            grant = f"GR{i}"
            ckt.add_gate(GateType.AND, [live[i], blocked], grant)
        grants.append(grant)
        inv = f"NL{i}"
        ckt.add_gate(GateType.NOT, [live[i]], inv)
        if blocked is None:
            blocked = inv
        else:
            nb = f"BL{i}"
            ckt.add_gate(GateType.AND, [blocked, inv], nb)
            blocked = nb
    # One-hot grants: XOR == OR, keeping the gate mix XOR-rich like c880.
    ckt.add_gate(GateType.XOR, [grants[i] for i in (1, 3, 5, 7)], "AD0")
    ckt.add_output("AD0")
    ckt.add_gate(GateType.XOR, [grants[i] for i in (2, 3, 6, 7)], "AD1")
    ckt.add_output("AD1")
    ckt.add_gate(GateType.XOR, [grants[i] for i in (4, 5, 6, 7)], "AD2")
    ckt.add_output("AD2")

    ckt.validate()
    return ckt


def ripple_carry_adder(n_bits: int, name: str | None = None) -> Circuit:
    """An ``n``-bit ripple-carry adder: inputs A0.., B0.., CIN; outputs S.., COUT."""
    if n_bits < 1:
        raise ValueError("adder needs at least one bit")
    ckt = Circuit(name=name or f"rca{n_bits}")
    a = [ckt.add_input(f"A{i}") for i in range(n_bits)]
    b = [ckt.add_input(f"B{i}") for i in range(n_bits)]
    carry = ckt.add_input("CIN")
    for i in range(n_bits):
        p = f"P{i}"
        ckt.add_gate(GateType.XOR, [a[i], b[i]], p)
        s = f"S{i}"
        ckt.add_gate(GateType.XOR, [p, carry], s)
        ckt.add_output(s)
        g1 = f"G1_{i}"
        g2 = f"G2_{i}"
        ckt.add_gate(GateType.AND, [a[i], b[i]], g1)
        ckt.add_gate(GateType.AND, [p, carry], g2)
        cout = f"C{i + 1}"
        ckt.add_gate(GateType.OR, [g1, g2], cout)
        carry = cout
    ckt.add_output(carry)
    ckt.validate()
    return ckt


def parity_tree(n_inputs: int, name: str | None = None) -> Circuit:
    """Balanced XOR parity tree over ``n`` inputs with one output ``PAR``."""
    if n_inputs < 2:
        raise ValueError("parity tree needs at least two inputs")
    ckt = Circuit(name=name or f"par{n_inputs}")
    frontier = [ckt.add_input(f"I{i}") for i in range(n_inputs)]
    counter = 0
    while len(frontier) > 1:
        next_frontier = []
        for i in range(0, len(frontier) - 1, 2):
            out = f"X{counter}"
            counter += 1
            ckt.add_gate(GateType.XOR, [frontier[i], frontier[i + 1]], out)
            next_frontier.append(out)
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
    final = "PAR"
    ckt.add_gate(GateType.BUF, [frontier[0]], final)
    ckt.add_output(final)
    ckt.validate()
    return ckt


def mux_tree(select_bits: int, name: str | None = None) -> Circuit:
    """A ``2**k``-to-1 multiplexer built from AND/OR/NOT gates."""
    if select_bits < 1:
        raise ValueError("mux needs at least one select bit")
    ckt = Circuit(name=name or f"mux{2 ** select_bits}")
    n_data = 2**select_bits
    data = [ckt.add_input(f"D{i}") for i in range(n_data)]
    sel = [ckt.add_input(f"S{i}") for i in range(select_bits)]
    nsel = []
    for i, s in enumerate(sel):
        n = f"NS{i}"
        ckt.add_gate(GateType.NOT, [s], n)
        nsel.append(n)
    terms = []
    for i in range(n_data):
        picks = [sel[j] if (i >> j) & 1 else nsel[j] for j in range(select_bits)]
        term = f"T{i}"
        ckt.add_gate(GateType.AND, [data[i], *picks], term)
        terms.append(term)
    ckt.add_gate(GateType.OR, terms, "Y")
    ckt.add_output("Y")
    ckt.validate()
    return ckt


def decoder(n_bits: int, name: str | None = None) -> Circuit:
    """An ``n``-to-``2**n`` line decoder with active-high outputs."""
    if n_bits < 1:
        raise ValueError("decoder needs at least one input bit")
    ckt = Circuit(name=name or f"dec{n_bits}")
    inputs = [ckt.add_input(f"I{i}") for i in range(n_bits)]
    ninputs = []
    for i, net in enumerate(inputs):
        n = f"NI{i}"
        ckt.add_gate(GateType.NOT, [net], n)
        ninputs.append(n)
    for code in range(2**n_bits):
        picks = [inputs[j] if (code >> j) & 1 else ninputs[j] for j in range(n_bits)]
        out = f"O{code}"
        if len(picks) == 1:
            ckt.add_gate(GateType.BUF, picks, out)
        else:
            ckt.add_gate(GateType.AND, picks, out)
        ckt.add_output(out)
    ckt.validate()
    return ckt


#: Registry of named benchmark factories for CLI-style lookup.
def _alu4():
    from repro.circuit.alu import alu4

    return alu4()


def _mul4():
    from repro.circuit.multiplier import multiplier4

    return multiplier4()


BENCHMARKS = {
    "c17": c17,
    "c432": c432_like,
    "c432_like": c432_like,
    "c880": c880_like,
    "c880_like": c880_like,
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "par16": lambda: parity_tree(16),
    "mux8": lambda: mux_tree(3),
    "dec4": lambda: decoder(4),
    "alu4": _alu4,
    "mul4": _mul4,
}


def load_benchmark(name: str) -> Circuit:
    """Instantiate a registered benchmark circuit by name."""
    try:
        return BENCHMARKS[name]()
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
