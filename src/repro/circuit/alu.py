"""A 4-bit ALU benchmark circuit (74181-inspired).

A second mid-size benchmark with a very different testability character from
the interrupt-controller class: arithmetic carry chains plus logic-op
multiplexing.  Operations (select ``S1 S0``, mode ``M``):

=====  ====  =======================
M      S     result
=====  ====  =======================
0      00    A + B + Cin  (arithmetic)
0      01    A - B - 1 + Cin  (i.e. A + ~B + Cin)
1      00    A AND B
1      01    A OR B
1      10    A XOR B
1      11    NOT A
=====  ====  =======================

Primary inputs: ``A0-3, B0-3, CIN, M, S0, S1`` (12).  Primary outputs:
``F0-3, COUT`` (5).  The function is checked exhaustively against a Python
reference in the tests.
"""

from __future__ import annotations

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = ["alu4", "alu_reference"]


def alu4() -> Circuit:
    """Build the 4-bit ALU circuit (~90 gates)."""
    ckt = Circuit(name="alu4")
    a = [ckt.add_input(f"A{i}") for i in range(4)]
    b = [ckt.add_input(f"B{i}") for i in range(4)]
    cin = ckt.add_input("CIN")
    mode = ckt.add_input("M")
    s0 = ckt.add_input("S0")
    s1 = ckt.add_input("S1")

    nm = _gate(ckt, GateType.NOT, [mode], "NM")
    ns0 = _gate(ckt, GateType.NOT, [s0], "NS0")
    ns1 = _gate(ckt, GateType.NOT, [s1], "NS1")

    # Operand B or ~B for the arithmetic path (S0 selects subtract).
    bops = []
    for i in range(4):
        nb = _gate(ckt, GateType.NOT, [b[i]], f"NB{i}")
        use_b = _gate(ckt, GateType.AND, [b[i], ns0], f"UB{i}")
        use_nb = _gate(ckt, GateType.AND, [nb, s0], f"UNB{i}")
        bops.append(_gate(ckt, GateType.OR, [use_b, use_nb], f"BOP{i}"))

    # Ripple-carry adder over A and BOP.
    carry = cin
    sums = []
    for i in range(4):
        p = _gate(ckt, GateType.XOR, [a[i], bops[i]], f"P{i}")
        sums.append(_gate(ckt, GateType.XOR, [p, carry], f"SUM{i}"))
        g1 = _gate(ckt, GateType.AND, [a[i], bops[i]], f"CG{i}")
        g2 = _gate(ckt, GateType.AND, [p, carry], f"CP{i}")
        carry = _gate(ckt, GateType.OR, [g1, g2], f"CRY{i + 1}")

    # Logic unit.
    logic = []
    for i in range(4):
        land = _gate(ckt, GateType.AND, [a[i], b[i]], f"LAND{i}")
        lor = _gate(ckt, GateType.OR, [a[i], b[i]], f"LOR{i}")
        lxor = _gate(ckt, GateType.XOR, [a[i], b[i]], f"LXOR{i}")
        lnot = _gate(ckt, GateType.NOT, [a[i]], f"LNOT{i}")
        sel_and = _gate(ckt, GateType.AND, [land, ns1, ns0], f"SLA{i}")
        sel_or = _gate(ckt, GateType.AND, [lor, ns1, s0], f"SLO{i}")
        sel_xor = _gate(ckt, GateType.AND, [lxor, s1, ns0], f"SLX{i}")
        sel_not = _gate(ckt, GateType.AND, [lnot, s1, s0], f"SLN{i}")
        logic.append(
            _gate(
                ckt, GateType.OR, [sel_and, sel_or, sel_xor, sel_not], f"LOGIC{i}"
            )
        )

    # Mode multiplexing and outputs.
    for i in range(4):
        arith_side = _gate(ckt, GateType.AND, [sums[i], nm], f"FA{i}")
        logic_side = _gate(ckt, GateType.AND, [logic[i], mode], f"FL{i}")
        ckt.add_gate(GateType.OR, [arith_side, logic_side], f"F{i}")
        ckt.add_output(f"F{i}")
    ckt.add_gate(GateType.AND, [carry, nm], "COUT")
    ckt.add_output("COUT")

    ckt.validate()
    return ckt


def alu_reference(
    a: int, b: int, cin: int, mode: int, select: int
) -> tuple[int, int]:
    """Reference function: returns (F as 4-bit int, COUT)."""
    if mode == 0:
        operand = (~b & 0xF) if select & 1 else b
        total = a + operand + cin
        return total & 0xF, (total >> 4) & 1
    if select == 0:
        return a & b, 0
    if select == 1:
        return a | b, 0
    if select == 2:
        return a ^ b, 0
    return (~a) & 0xF, 0


def _gate(ckt: Circuit, gt: GateType, inputs: list[str], out: str) -> str:
    ckt.add_gate(gt, inputs, out)
    return out
