"""Topological levelization and cone extraction for combinational circuits.

Levelization orders gates so that every gate appears after all gates driving
its inputs; it is the precondition for single-pass simulation.  Cone extraction
computes the input/output cones of a net, used by the fault simulator to limit
event propagation and by ATPG for observability reasoning.
"""

from __future__ import annotations

from collections import deque

from repro.circuit.netlist import Circuit, CircuitError, Gate

__all__ = [
    "levelize",
    "dfs_topological",
    "gate_levels",
    "output_cone",
    "input_cone",
    "circuit_depth",
    "strongly_connected_components",
    "find_combinational_cycle",
    "undriven_nets",
]


def levelize(circuit: Circuit) -> list[Gate]:
    """Return the circuit's gates in topological order (Kahn's algorithm).

    Raises
    ------
    CircuitError
        If the circuit contains a combinational cycle (the error names the
        actual cycle, found via the SCC pass) or reads undriven nets (the
        error names those nets).
    """
    fanout = circuit.fanout_map()
    pending = {gate.name: len(gate.inputs) for gate in circuit.gates}

    ready: deque[Gate] = deque()
    for pi in circuit.primary_inputs:
        for gate in fanout.get(pi, []):
            pending[gate.name] -= 1
            if pending[gate.name] == 0:
                ready.append(gate)
    # Gates whose inputs are all primary inputs that appear multiply need the
    # count handled once per connection, which the loop above already does; a
    # gate with zero remaining pending inputs is ready.
    order: list[Gate] = []
    scheduled = {gate.name for gate in ready}
    while ready:
        gate = ready.popleft()
        order.append(gate)
        for reader in fanout.get(gate.output, []):
            pending[reader.name] -= 1
            if pending[reader.name] == 0 and reader.name not in scheduled:
                scheduled.add(reader.name)
                ready.append(reader)

    if len(order) != len(circuit.gates):
        # Distinguish the two failure modes instead of guessing: a
        # combinational cycle (report the actual loop) vs. gates reading
        # nets nothing drives (report the nets).
        cycle = find_combinational_cycle(circuit)
        if cycle is not None:
            loop = " -> ".join([*cycle, cycle[0]])
            raise CircuitError(f"combinational cycle: {loop}")
        missing = sorted(undriven_nets(circuit))
        raise CircuitError(
            f"undriven nets block levelization: {missing[:8]}"
        )
    return order


def undriven_nets(circuit: Circuit) -> set[str]:
    """Nets read by gates (or named as POs) that nothing drives."""
    driven = set(circuit.primary_inputs)
    driven.update(gate.output for gate in circuit.gates)
    missing: set[str] = set()
    for gate in circuit.gates:
        missing.update(net for net in gate.inputs if net not in driven)
    missing.update(po for po in circuit.primary_outputs if po not in driven)
    return missing


def strongly_connected_components(circuit: Circuit) -> list[list[str]]:
    """SCCs of the net graph (Tarjan, iterative), each in discovery order.

    Nodes are driven net names; there is an edge from each gate input net to
    the gate's output net.  Components of size one without a self-loop are
    the acyclic case; any other component is a combinational cycle.
    """
    driver = {gate.output: gate for gate in circuit.gates}
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in driver:
        if root in index:
            continue
        # Iterative Tarjan: (node, iterator over predecessor nets).
        work: list[tuple[str, list[str], int]] = []
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work.append((root, [n for n in driver[root].inputs if n in driver], 0))
        while work:
            node, preds, i = work.pop()
            advanced = False
            while i < len(preds):
                nxt = preds[i]
                i += 1
                if nxt not in index:
                    work.append((node, preds, i))
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack.add(nxt)
                    work.append(
                        (nxt, [n for n in driver[nxt].inputs if n in driver], 0)
                    )
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component[::-1])
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def find_combinational_cycle(circuit: Circuit) -> list[str] | None:
    """One actual combinational cycle as an ordered net list, or None.

    The cycle is recovered from the first non-trivial SCC (or self-loop) by
    walking gate inputs inside the component until the start net repeats.
    """
    driver = {gate.output: gate for gate in circuit.gates}
    for component in strongly_connected_components(circuit):
        members = set(component)
        start = component[0]
        self_loop = start in driver and start in driver[start].inputs
        if len(component) == 1 and not self_loop:
            continue
        # Walk backwards through in-component inputs until we close the loop.
        path = [start]
        seen = {start}
        current = start
        while True:
            gate = driver[current]
            nxt = next(net for net in gate.inputs if net in members)
            if nxt == start:
                return path[::-1]
            if nxt in seen:
                # Close on the inner loop instead.
                inner = path[path.index(nxt):]
                return inner[::-1]
            path.append(nxt)
            seen.add(nxt)
            current = nxt
    return None


def dfs_topological(circuit: Circuit) -> list[Gate]:
    """Topological gate order that keeps logic cones contiguous.

    Depth-first from each primary output: a gate is emitted right after the
    gates driving it.  Still a valid evaluation order (inputs precede
    consumers), but unlike the BFS/level order of :func:`levelize`, related
    gates stay adjacent — which is what placement wants (short nets), the way
    a wirelength-driven placer would arrange them.
    """
    driver = {gate.output: gate for gate in circuit.gates}
    emitted: set[str] = set()
    order: list[Gate] = []

    def visit(net: str) -> None:
        stack: list[tuple[str, int]] = [(net, 0)]
        while stack:
            current, phase = stack.pop()
            gate = driver.get(current)
            if gate is None or current in emitted:
                continue
            if phase == 0:
                stack.append((current, 1))
                for source in reversed(gate.inputs):
                    if source not in emitted:
                        stack.append((source, 0))
            else:
                if current not in emitted:
                    emitted.add(current)
                    order.append(gate)

    for po in circuit.primary_outputs:
        visit(po)
    # Gates not reaching any PO (dangling logic) still need placement.
    for gate in circuit.gates:
        if gate.output not in emitted:
            visit(gate.output)
    return order


def gate_levels(circuit: Circuit) -> dict[str, int]:
    """Map each net to its logic level (PIs at level 0).

    A gate output's level is ``1 + max(level of inputs)``.
    """
    levels: dict[str, int] = dict.fromkeys(circuit.primary_inputs, 0)
    for gate in levelize(circuit):
        levels[gate.output] = 1 + max(levels[net] for net in gate.inputs)
    return levels


def circuit_depth(circuit: Circuit) -> int:
    """Maximum logic level over all nets (0 for a wire-only circuit)."""
    levels = gate_levels(circuit)
    return max(levels.values(), default=0)


def output_cone(circuit: Circuit, net: str) -> set[str]:
    """All nets reachable *from* ``net`` through gate inputs (incl. ``net``).

    This is the set of nets whose value can be affected by a fault on ``net``.
    """
    fanout = circuit.fanout_map()
    seen = {net}
    frontier = deque([net])
    while frontier:
        current = frontier.popleft()
        for gate in fanout.get(current, []):
            if gate.output not in seen:
                seen.add(gate.output)
                frontier.append(gate.output)
    return seen


def input_cone(circuit: Circuit, net: str) -> set[str]:
    """All nets that can affect ``net`` (its transitive fan-in, incl. itself)."""
    driver = {gate.output: gate for gate in circuit.gates}
    seen = {net}
    frontier = deque([net])
    while frontier:
        current = frontier.popleft()
        gate = driver.get(current)
        if gate is None:
            continue
        for source in gate.inputs:
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return seen
