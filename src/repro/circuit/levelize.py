"""Topological levelization and cone extraction for combinational circuits.

Levelization orders gates so that every gate appears after all gates driving
its inputs; it is the precondition for single-pass simulation.  Cone extraction
computes the input/output cones of a net, used by the fault simulator to limit
event propagation and by ATPG for observability reasoning.
"""

from __future__ import annotations

from collections import deque

from repro.circuit.netlist import Circuit, CircuitError, Gate

__all__ = [
    "levelize",
    "dfs_topological",
    "gate_levels",
    "output_cone",
    "input_cone",
    "circuit_depth",
]


def levelize(circuit: Circuit) -> list[Gate]:
    """Return the circuit's gates in topological order (Kahn's algorithm).

    Raises
    ------
    CircuitError
        If the circuit contains a combinational cycle.
    """
    fanout = circuit.fanout_map()
    pending = {gate.name: len(gate.inputs) for gate in circuit.gates}
    by_name = {gate.name: gate for gate in circuit.gates}

    ready: deque[Gate] = deque()
    for pi in circuit.primary_inputs:
        for gate in fanout.get(pi, []):
            pending[gate.name] -= 1
            if pending[gate.name] == 0:
                ready.append(gate)
    # Gates whose inputs are all primary inputs that appear multiply need the
    # count handled once per connection, which the loop above already does; a
    # gate with zero remaining pending inputs is ready.
    order: list[Gate] = []
    scheduled = {gate.name for gate in ready}
    while ready:
        gate = ready.popleft()
        order.append(gate)
        for reader in fanout.get(gate.output, []):
            pending[reader.name] -= 1
            if pending[reader.name] == 0 and reader.name not in scheduled:
                scheduled.add(reader.name)
                ready.append(reader)

    if len(order) != len(circuit.gates):
        stuck = sorted(set(by_name) - {g.name for g in order})
        raise CircuitError(f"cycle or undriven inputs; unordered gates: {stuck[:5]}")
    return order


def dfs_topological(circuit: Circuit) -> list[Gate]:
    """Topological gate order that keeps logic cones contiguous.

    Depth-first from each primary output: a gate is emitted right after the
    gates driving it.  Still a valid evaluation order (inputs precede
    consumers), but unlike the BFS/level order of :func:`levelize`, related
    gates stay adjacent — which is what placement wants (short nets), the way
    a wirelength-driven placer would arrange them.
    """
    driver = {gate.output: gate for gate in circuit.gates}
    emitted: set[str] = set()
    order: list[Gate] = []

    def visit(net: str) -> None:
        stack: list[tuple[str, int]] = [(net, 0)]
        while stack:
            current, phase = stack.pop()
            gate = driver.get(current)
            if gate is None or current in emitted:
                continue
            if phase == 0:
                stack.append((current, 1))
                for source in reversed(gate.inputs):
                    if source not in emitted:
                        stack.append((source, 0))
            else:
                if current not in emitted:
                    emitted.add(current)
                    order.append(gate)

    for po in circuit.primary_outputs:
        visit(po)
    # Gates not reaching any PO (dangling logic) still need placement.
    for gate in circuit.gates:
        if gate.output not in emitted:
            visit(gate.output)
    return order


def gate_levels(circuit: Circuit) -> dict[str, int]:
    """Map each net to its logic level (PIs at level 0).

    A gate output's level is ``1 + max(level of inputs)``.
    """
    levels: dict[str, int] = dict.fromkeys(circuit.primary_inputs, 0)
    for gate in levelize(circuit):
        levels[gate.output] = 1 + max(levels[net] for net in gate.inputs)
    return levels


def circuit_depth(circuit: Circuit) -> int:
    """Maximum logic level over all nets (0 for a wire-only circuit)."""
    levels = gate_levels(circuit)
    return max(levels.values(), default=0)


def output_cone(circuit: Circuit, net: str) -> set[str]:
    """All nets reachable *from* ``net`` through gate inputs (incl. ``net``).

    This is the set of nets whose value can be affected by a fault on ``net``.
    """
    fanout = circuit.fanout_map()
    seen = {net}
    frontier = deque([net])
    while frontier:
        current = frontier.popleft()
        for gate in fanout.get(current, []):
            if gate.output not in seen:
                seen.add(gate.output)
                frontier.append(gate.output)
    return seen


def input_cone(circuit: Circuit, net: str) -> set[str]:
    """All nets that can affect ``net`` (its transitive fan-in, incl. itself)."""
    driver = {gate.output: gate for gate in circuit.gates}
    seen = {net}
    frontier = deque([net])
    while frontier:
        current = frontier.popleft()
        gate = driver.get(current)
        if gate is None:
            continue
        for source in gate.inputs:
            if source not in seen:
                seen.add(source)
                frontier.append(source)
    return seen
