"""Gate-level circuit substrate: netlists, parsing, benchmarks, levelization."""

from repro.circuit.alu import alu4, alu_reference
from repro.circuit.bench_parser import parse_bench, parse_bench_file, write_bench
from repro.circuit.iscas import (
    BENCHMARKS,
    c17,
    c432_like,
    decoder,
    load_benchmark,
    mux_tree,
    parity_tree,
    ripple_carry_adder,
)
from repro.circuit.levelize import (
    circuit_depth,
    gate_levels,
    input_cone,
    levelize,
    output_cone,
)
from repro.circuit.library import GateType, evaluate_gate, evaluate_gate_packed
from repro.circuit.netlist import Circuit, CircuitError, Gate

__all__ = [
    "BENCHMARKS",
    "Circuit",
    "alu4",
    "alu_reference",
    "CircuitError",
    "Gate",
    "GateType",
    "c17",
    "c432_like",
    "circuit_depth",
    "decoder",
    "evaluate_gate",
    "evaluate_gate_packed",
    "gate_levels",
    "input_cone",
    "levelize",
    "load_benchmark",
    "mux_tree",
    "output_cone",
    "parse_bench",
    "parse_bench_file",
    "parity_tree",
    "ripple_carry_adder",
    "write_bench",
]
