"""Gate-level netlist representation.

A :class:`Circuit` is a named directed acyclic graph of :class:`Gate` objects
connected by named nets.  Every net is driven either by a primary input or by
exactly one gate output; primary outputs name nets that are observable.

The representation is deliberately simple and explicit — net names are the
identity, fanout is derived, and structural validation is a method you call
rather than a side effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.library import GateType

__all__ = ["Gate", "Circuit", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structurally invalid circuits (cycles, bad references...)."""


@dataclass(frozen=True)
class Gate:
    """One combinational gate instance.

    Attributes
    ----------
    name:
        Unique instance name; by convention equals the output net name.
    gate_type:
        The primitive function computed.
    inputs:
        Ordered tuple of input net names.
    output:
        The output net name (unique driver of that net).
    """

    name: str
    gate_type: GateType
    inputs: tuple[str, ...]
    output: str

    def __post_init__(self) -> None:
        if not self.inputs:
            raise CircuitError(f"gate {self.name!r} has no inputs")


@dataclass
class Circuit:
    """A combinational gate-level circuit.

    Attributes
    ----------
    name:
        Circuit name (e.g. ``"c432"``).
    primary_inputs:
        Ordered primary input net names.
    primary_outputs:
        Ordered primary output net names (each must be a driven net or a PI).
    gates:
        Gate instances, in arbitrary order (use :mod:`repro.circuit.levelize`
        for topological order).
    """

    name: str
    primary_inputs: list[str] = field(default_factory=list)
    primary_outputs: list[str] = field(default_factory=list)
    gates: list[Gate] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_input(self, net: str) -> str:
        """Declare a primary input net and return its name."""
        if net in self.primary_inputs:
            raise CircuitError(f"duplicate primary input {net!r}")
        self.primary_inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net and return its name."""
        if net in self.primary_outputs:
            raise CircuitError(f"duplicate primary output {net!r}")
        self.primary_outputs.append(net)
        return net

    def add_gate(
        self,
        gate_type: GateType | str,
        inputs: list[str] | tuple[str, ...],
        output: str,
        name: str | None = None,
    ) -> Gate:
        """Add a gate driving net ``output`` and return the Gate."""
        gtype = GateType(gate_type) if not isinstance(gate_type, GateType) else gate_type
        gate = Gate(name or output, gtype, tuple(inputs), output)
        self.gates.append(gate)
        return gate

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def nets(self) -> list[str]:
        """All net names: primary inputs plus every gate output."""
        seen: dict[str, None] = dict.fromkeys(self.primary_inputs)
        for gate in self.gates:
            seen.setdefault(gate.output, None)
        return list(seen)

    def driver_of(self, net: str) -> Gate | None:
        """The gate driving ``net``, or None for primary inputs."""
        return self._driver_map().get(net)

    def fanout_of(self, net: str) -> list[Gate]:
        """Gates that read ``net`` as an input."""
        return [g for g in self.gates if net in g.inputs]

    def fanout_map(self) -> dict[str, list[Gate]]:
        """Net name -> list of reading gates, computed in one pass."""
        fanout: dict[str, list[Gate]] = {net: [] for net in self.nets}
        for gate in self.gates:
            for net in gate.inputs:
                fanout.setdefault(net, []).append(gate)
        return fanout

    def _driver_map(self) -> dict[str, Gate]:
        return {gate.output: gate for gate in self.gates}

    @property
    def gate_count(self) -> int:
        """Number of gate instances."""
        return len(self.gates)

    def stats(self) -> dict[str, int]:
        """Summary counts: inputs, outputs, gates, nets, transistors."""
        transistors = sum(
            g.gate_type.transistor_count(len(g.inputs)) for g in self.gates
        )
        return {
            "inputs": len(self.primary_inputs),
            "outputs": len(self.primary_outputs),
            "gates": self.gate_count,
            "nets": len(self.nets),
            "transistors": transistors,
        }

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural well-formedness; raise :class:`CircuitError`.

        Verifies unique drivers, that all gate inputs and primary outputs are
        driven nets, and that the gate graph is acyclic.
        """
        drivers: dict[str, str] = {}
        for pi in self.primary_inputs:
            drivers[pi] = "<PI>"
        for gate in self.gates:
            if gate.output in drivers:
                raise CircuitError(
                    f"net {gate.output!r} has multiple drivers "
                    f"({drivers[gate.output]} and {gate.name})"
                )
            drivers[gate.output] = gate.name

        for gate in self.gates:
            for net in gate.inputs:
                if net not in drivers:
                    raise CircuitError(
                        f"gate {gate.name!r} reads undriven net {net!r}"
                    )
        for po in self.primary_outputs:
            if po not in drivers:
                raise CircuitError(f"primary output {po!r} is not driven")

        self._check_acyclic()

    def _check_acyclic(self) -> None:
        driver = self._driver_map()
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        for start in (g.output for g in self.gates):
            if start in state:
                continue
            stack: list[tuple[str, int]] = [(start, 0)]
            while stack:
                net, idx = stack.pop()
                gate = driver.get(net)
                if gate is None:
                    state[net] = 1
                    continue
                if idx == 0:
                    if state.get(net) == 0:
                        raise CircuitError(
                            f"combinational cycle through {net!r}: "
                            f"{self._describe_cycle(net)}"
                        )
                    if state.get(net) == 1:
                        continue
                    state[net] = 0
                    stack.append((net, 1))
                    for child in gate.inputs:
                        if state.get(child) != 1:
                            stack.append((child, 0))
                else:
                    state[net] = 1

    def _describe_cycle(self, hint: str) -> str:
        # Local import: levelize imports this module at top level.
        from repro.circuit.levelize import find_combinational_cycle

        cycle = find_combinational_cycle(self)
        if cycle is None:  # pragma: no cover - hint net always sits on one
            return hint
        return " -> ".join([*cycle, cycle[0]])
