"""Reader and writer for the ISCAS-85 ``.bench`` netlist format.

The format (Brglez & Fujiwara, ISCAS 1985) is line oriented::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

Gate keywords are case-insensitive.  ``DFF`` and other sequential elements are
rejected: this library models combinational circuits only, as the paper does.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, CircuitError

__all__ = ["parse_bench", "parse_bench_file", "write_bench"]

_INPUT_RE = re.compile(r"^INPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_OUTPUT_RE = re.compile(r"^OUTPUT\s*\(\s*([^)\s]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*(.*?)\s*\)$", re.IGNORECASE
)

_TYPE_ALIASES = {
    "BUFF": GateType.BUF,
    "BUF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a validated :class:`Circuit`.

    Parameters
    ----------
    text:
        The netlist source.
    name:
        Name to give the resulting circuit.

    Raises
    ------
    CircuitError
        On syntax errors, unknown gate types, or structural problems.
    """
    circuit = Circuit(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if match := _INPUT_RE.match(line):
            circuit.add_input(match.group(1))
            continue
        if match := _OUTPUT_RE.match(line):
            circuit.add_output(match.group(1))
            continue
        if match := _GATE_RE.match(line):
            output, type_name, args = match.groups()
            gate_type = _TYPE_ALIASES.get(type_name.upper())
            if gate_type is None:
                raise CircuitError(
                    f"line {lineno}: unsupported gate type {type_name!r} "
                    "(sequential elements are not modelled)"
                )
            inputs = [a.strip() for a in args.split(",") if a.strip()]
            if not inputs:
                raise CircuitError(f"line {lineno}: gate {output!r} has no inputs")
            circuit.add_gate(gate_type, inputs, output)
            continue
        raise CircuitError(f"line {lineno}: cannot parse {raw!r}")

    circuit.validate()
    return circuit


def parse_bench_file(path: str | Path) -> Circuit:
    """Parse a ``.bench`` file; the circuit is named after the file stem."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialise a circuit back to ``.bench`` text (round-trips with parse)."""
    lines = [f"# {circuit.name}"]
    lines.extend(f"INPUT({pi})" for pi in circuit.primary_inputs)
    lines.extend(f"OUTPUT({po})" for po in circuit.primary_outputs)
    for gate in circuit.gates:
        args = ", ".join(gate.inputs)
        keyword = "BUFF" if gate.gate_type is GateType.BUF else gate.gate_type.value
        lines.append(f"{gate.output} = {keyword}({args})")
    return "\n".join(lines) + "\n"
