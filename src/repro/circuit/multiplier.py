"""A 4x4 array multiplier benchmark.

Carry-save array structure: AND-gate partial products reduced by rows of
full adders.  XOR-dense and reconvergent — a different testability
character from both the priority controller (c432-class) and the ripple
adder, and a stress case for the XOR-cluster placement.  Verified
exhaustively against integer multiplication in the tests.
"""

from __future__ import annotations

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = ["multiplier4"]


def _full_adder(ckt: Circuit, a: str, b: str, cin: str, tag: str) -> tuple[str, str]:
    """Emit a full adder; returns (sum, carry) net names."""
    p = f"{tag}_P"
    ckt.add_gate(GateType.XOR, [a, b], p)
    s = f"{tag}_S"
    ckt.add_gate(GateType.XOR, [p, cin], s)
    g1 = f"{tag}_G1"
    ckt.add_gate(GateType.AND, [a, b], g1)
    g2 = f"{tag}_G2"
    ckt.add_gate(GateType.AND, [p, cin], g2)
    c = f"{tag}_C"
    ckt.add_gate(GateType.OR, [g1, g2], c)
    return s, c


def _half_adder(ckt: Circuit, a: str, b: str, tag: str) -> tuple[str, str]:
    s = f"{tag}_S"
    ckt.add_gate(GateType.XOR, [a, b], s)
    c = f"{tag}_C"
    ckt.add_gate(GateType.AND, [a, b], c)
    return s, c


def multiplier4() -> Circuit:
    """Build the 4x4 unsigned array multiplier (8-bit product)."""
    ckt = Circuit(name="mul4")
    a = [ckt.add_input(f"A{i}") for i in range(4)]
    b = [ckt.add_input(f"B{i}") for i in range(4)]

    # Partial products pp[i][j] = A_i AND B_j contributes to bit i+j.
    pp = [[None] * 4 for _ in range(4)]
    for i in range(4):
        for j in range(4):
            net = f"PP{i}{j}"
            ckt.add_gate(GateType.AND, [a[i], b[j]], net)
            pp[i][j] = net

    # Column-wise carry-save reduction.
    columns: list[list[str]] = [[] for _ in range(8)]
    for i in range(4):
        for j in range(4):
            columns[i + j].append(pp[i][j])

    outputs: list[str] = []
    adder = 0
    for bit in range(8):
        col = columns[bit]
        while len(col) > 1:
            if len(col) >= 3:
                s, c = _full_adder(ckt, col[0], col[1], col[2], f"FA{adder}")
                col = col[3:] + [s]
            else:
                s, c = _half_adder(ckt, col[0], col[1], f"HA{adder}")
                col = col[2:] + [s]
            adder += 1
            if bit + 1 < 8:
                columns[bit + 1].append(c)
        # Every product column receives at least one partial product or
        # carry, so reduction always leaves exactly one survivor.
        assert len(col) == 1, f"column {bit} reduced to {len(col)} nets"
        ckt.add_gate(GateType.BUF, [col[0]], f"P{bit}")
        outputs.append(f"P{bit}")

    for net in outputs:
        ckt.add_output(net)
    ckt.validate()
    return ckt
