"""repro — reproduction of "Fault Modeling and Defect Level Projections in
Digital ICs" (Sousa, Gonçalves, Teixeira, Williams; DATE 1994).

Subpackages
-----------
``repro.core``
    The paper's contribution: defect-level models (Williams–Brown, Agrawal,
    weighted realistic, and the proposed two-parameter model), coverage-growth
    laws, yield models and curve fitting.
``repro.circuit``
    Gate-level netlists, the ISCAS ``.bench`` format and benchmark circuits.
``repro.simulation``
    Parallel-pattern logic and stuck-at fault simulation.
``repro.atpg``
    Random and PODEM deterministic test generation.
``repro.layout``
    Procedural CMOS standard-cell layout: cells, placement, 2-metal routing.
``repro.defects``
    Spot-defect statistics, critical areas and layout fault extraction (IFA).
``repro.switchsim``
    Switch-level simulation of extracted bridge/open faults.
``repro.experiments``
    The end-to-end evaluation pipeline and per-figure reproductions.
"""

__version__ = "1.0.0"
