"""Bounded retry with deterministic backoff.

The policy is intentionally jitter-free: recovery paths must be reproducible
(the chaos tests assert exact retry counts and delays), and the workers being
throttled are local processes, not a shared service, so thundering-herd
jitter buys nothing here.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RetryPolicy", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently failed chunks are re-attempted.

    Attributes
    ----------
    max_attempts:
        Total pool attempts per chunk, the first try included.  With the
        default of 2, a failed chunk is retried once in a fresh pool before
        the serial salvage phase takes over.
    backoff_base:
        Delay in seconds before the first retry.
    backoff_factor:
        Multiplier applied per further retry (exponential backoff).
    backoff_max:
        Upper bound on any single delay.
    """

    max_attempts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, retry_index: int) -> float:
        """Deterministic delay before retry number ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0, got {retry_index}")
        return min(
            self.backoff_base * self.backoff_factor**retry_index, self.backoff_max
        )

    def delays(self) -> list[float]:
        """Every backoff delay the policy will apply, in order."""
        return [self.delay(i) for i in range(self.max_attempts - 1)]


DEFAULT_RETRY_POLICY = RetryPolicy()
