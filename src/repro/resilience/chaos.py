"""Deterministic chaos harness: seeded failure injection at named points.

Every recovery path in the resilience layer is exercised by *injecting* the
failure it recovers from, at a named **chaos point**, under a
:class:`ChaosPlan` installed for the duration of a test (or the CI
chaos-smoke job).  Injection is fully deterministic: a rule either names the
exact hits it fires on (``keys`` / ``attempts``) or uses a ``rate`` resolved
by hashing ``(plan seed, point, key, attempt)`` — never wall-clock or global
RNG state — so a failing chaos test replays bit-identically.

Chaos points currently wired in:

========================  =====================================================
point                     where / what it can inject
========================  =====================================================
``parallel.chunk``        inside the worker, before simulating a fault chunk;
                          kinds ``exception`` (transient), ``fatal``,
                          ``crash`` (``os._exit``), ``sleep`` (breach the
                          chunk deadline).  ``key`` = chunk id, ``attempt`` =
                          pool attempt number.
``checkpoint.save``       cooperative: :class:`~repro.resilience.checkpoint.
                          CheckpointStore` mangles the file it just wrote;
                          kinds ``truncate``, ``corrupt``.  ``key`` = stage.
``pipeline.stage``        right after a pipeline stage completes (and its
                          checkpoint is saved); kind ``exception`` simulates
                          a crash between stages.  ``key`` = stage name.
``campaign.job``          inside the campaign worker, before the experiment
                          runs (and before the heartbeat thread starts);
                          kinds ``exception``, ``fatal``, ``crash``,
                          ``sleep``.  ``key`` = job id (config hash),
                          ``attempt`` = lease attempt number.
``campaign.journal``      cooperative: the journal mangles the line it is
                          appending; kinds ``truncate`` (torn tail),
                          ``corrupt`` (bit flip).  ``key`` = record type.
``campaign.lease``        cooperative: the supervisor treats a matching
                          lease as expired; kind ``expire``.  ``key`` = job
                          id, ``attempt`` = lease attempt number.
========================  =====================================================

The plan travels into worker processes through the pool initializer, so
worker-side points fire under the same plan as the parent.

With no plan installed every hook is a no-op costing one module-global check.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Hashable, Iterator

from repro.resilience.errors import ChaosInjectedError, ChaosInjectedFatalError

__all__ = [
    "ChaosRule",
    "ChaosPlan",
    "install",
    "uninstall",
    "current_plan",
    "active",
    "maybe_inject",
    "planned_kind",
]

#: Kinds ``maybe_inject`` performs itself.
_ACTIVE_KINDS = frozenset({"exception", "fatal", "crash", "sleep"})
#: Kinds a call site must apply itself (file mangling, forced lease expiry).
_COOPERATIVE_KINDS = frozenset({"truncate", "corrupt", "expire"})


@dataclass(frozen=True)
class ChaosRule:
    """One injection rule: *at this point, under these conditions, do this*.

    Attributes
    ----------
    point:
        Chaos-point name the rule arms.
    kind:
        ``exception`` | ``fatal`` | ``crash`` | ``sleep`` (active) or
        ``truncate`` | ``corrupt`` | ``expire`` (cooperative, applied by
        the call site).
    keys:
        Hit keys (chunk ids, stage names) the rule fires on; None = all.
    attempts:
        Pool attempt numbers the rule fires on; None = all.  ``{0}`` makes a
        failure that heals on retry.
    rate:
        Probability of firing on a matching hit, resolved deterministically
        from the plan seed; 1.0 fires on every match.
    sleep_s:
        Sleep duration for ``kind="sleep"``.
    """

    point: str
    kind: str
    keys: frozenset | None = None
    attempts: frozenset | None = None
    rate: float = 1.0
    sleep_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _ACTIVE_KINDS | _COOPERATIVE_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        # Accept any iterable for convenience; store hashable frozensets.
        if self.keys is not None and not isinstance(self.keys, frozenset):
            object.__setattr__(self, "keys", frozenset(self.keys))
        if self.attempts is not None and not isinstance(self.attempts, frozenset):
            object.__setattr__(self, "attempts", frozenset(self.attempts))

    def matches(self, seed: int, point: str, key: Hashable, attempt: int) -> bool:
        if point != self.point:
            return False
        if self.keys is not None and key not in self.keys:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.rate >= 1.0:
            return True
        return _hash_fraction(seed, point, key, attempt) < self.rate


@dataclass(frozen=True)
class ChaosPlan:
    """A seeded set of injection rules, installable as the active plan."""

    rules: tuple[ChaosRule, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))

    def rule_for(self, point: str, key: Hashable, attempt: int) -> ChaosRule | None:
        """First rule armed for this hit, or None."""
        for rule in self.rules:
            if rule.matches(self.seed, point, key, attempt):
                return rule
        return None


def _hash_fraction(seed: int, point: str, key: Hashable, attempt: int) -> float:
    """Deterministic uniform fraction in [0, 1) for a (seed, hit) pair."""
    digest = hashlib.sha256(
        f"{seed}:{point}:{key!r}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


_PLAN: ChaosPlan | None = None


def install(plan: ChaosPlan | None) -> None:
    """Install ``plan`` as the process-wide active plan (None clears it)."""
    global _PLAN
    _PLAN = plan


def uninstall() -> None:
    """Clear the active plan."""
    install(None)


def current_plan() -> ChaosPlan | None:
    """The active plan (shipped to pool workers by the fan-out)."""
    return _PLAN


@contextmanager
def active(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Scope ``plan`` to a ``with`` block (tests)."""
    previous = _PLAN
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


def maybe_inject(point: str, key: Hashable = None, attempt: int = 0) -> None:
    """Fire any active-kind rule armed for this hit; no-op without a plan.

    ``exception``/``fatal`` raise the typed chaos errors, ``crash`` kills the
    process the way a segfaulting worker would (``os._exit``), ``sleep``
    stalls long enough to breach a chunk deadline.  Cooperative kinds
    (``truncate``/``corrupt``) are ignored here — the call site applies them
    via :func:`planned_kind`.
    """
    if _PLAN is None:
        return
    rule = _PLAN.rule_for(point, key, attempt)
    if rule is None or rule.kind not in _ACTIVE_KINDS:
        return
    if rule.kind == "exception":
        raise ChaosInjectedError(
            f"chaos: injected failure at {point} (key={key!r}, attempt={attempt})"
        )
    if rule.kind == "fatal":
        raise ChaosInjectedFatalError(
            f"chaos: injected fatal at {point} (key={key!r}, attempt={attempt})"
        )
    if rule.kind == "crash":
        os._exit(23)
    time.sleep(rule.sleep_s)


def planned_kind(point: str, key: Hashable = None, attempt: int = 0) -> str | None:
    """Cooperative-kind lookup: what (if anything) should the site inject?"""
    if _PLAN is None:
        return None
    rule = _PLAN.rule_for(point, key, attempt)
    if rule is None or rule.kind not in _COOPERATIVE_KINDS:
        return None
    return rule.kind
