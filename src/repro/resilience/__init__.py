"""Resilient execution layer: failure taxonomy, retry, checkpoints, chaos.

Long multi-stage runs (the paper's section-3 recipe: ATPG, gate-level fault
simulation, layout extraction, switch-level simulation, fitting) must survive
worker crashes, hangs and interrupted processes without restarting from zero
— and without ever degrading silently.  This package supplies the pieces:

* :mod:`repro.resilience.errors` — the transient/fatal failure taxonomy and
  :func:`classify_failure`;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, bounded retry with
  deterministic (jitter-free) exponential backoff;
* :mod:`repro.resilience.checkpoint` — :class:`CheckpointStore`, per-stage
  pipeline checkpoints keyed by configuration hash, with integrity-checked
  atomic files;
* :mod:`repro.resilience.chaos` — seeded, deterministic failure injection at
  named points, so every recovery path is *exercised* by tests and CI, not
  just claimed.

The supervised fan-out consuming the taxonomy lives in
:class:`repro.simulation.parallel.ParallelFaultSimulator`; the checkpointed
pipeline in :func:`repro.experiments.pipeline.run_experiment`.  Policy and
format details: ``docs/RESILIENCE.md``.
"""

from repro.resilience.chaos import (
    ChaosPlan,
    ChaosRule,
    active,
    current_plan,
    install,
    maybe_inject,
    planned_kind,
    uninstall,
)
from repro.resilience.checkpoint import CHECKPOINT_MAGIC, CheckpointStore
from repro.resilience.errors import (
    ChaosInjectedError,
    ChaosInjectedFatalError,
    CheckpointCorruptError,
    CheckpointError,
    ChunkFailure,
    ChunkTimeoutError,
    FailureKind,
    FatalFailure,
    ResilienceError,
    TransientFailure,
    WorkerCrashError,
    classify_failure,
)
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "ChaosPlan",
    "ChaosRule",
    "active",
    "current_plan",
    "install",
    "maybe_inject",
    "planned_kind",
    "uninstall",
    "CHECKPOINT_MAGIC",
    "CheckpointStore",
    "ChaosInjectedError",
    "ChaosInjectedFatalError",
    "CheckpointCorruptError",
    "CheckpointError",
    "ChunkFailure",
    "ChunkTimeoutError",
    "FailureKind",
    "FatalFailure",
    "ResilienceError",
    "TransientFailure",
    "WorkerCrashError",
    "classify_failure",
    "DEFAULT_RETRY_POLICY",
    "RetryPolicy",
]
