"""Typed failure taxonomy of the resilience layer.

Every recovery decision in :mod:`repro.resilience` starts from one question:
*is this failure worth retrying?*  The taxonomy answers it with two classes —

* **transient** — the failure is environmental (a worker process died, a
  chunk timed out, the OS refused a resource) and the same work may well
  succeed on a clean retry;
* **fatal** — the failure is deterministic (a bug raised inside the
  simulation code): retrying reproduces it, so the supervisor skips pool
  retries and re-runs the chunk serially in the parent, where the real
  exception propagates with full context instead of being swallowed.

:func:`classify_failure` maps an arbitrary exception onto the taxonomy.
Chaos-injected failures (:mod:`repro.resilience.chaos`) subclass the typed
errors directly so every classification path is exercisable from tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = [
    "ResilienceError",
    "TransientFailure",
    "FatalFailure",
    "ChunkTimeoutError",
    "WorkerCrashError",
    "CheckpointError",
    "CheckpointCorruptError",
    "ChaosInjectedError",
    "ChaosInjectedFatalError",
    "FailureKind",
    "ChunkFailure",
    "classify_failure",
]


class ResilienceError(Exception):
    """Base class of every error the resilience layer raises itself."""


class TransientFailure(ResilienceError):
    """A failure that a clean retry may resolve."""


class FatalFailure(ResilienceError):
    """A deterministic failure: retrying reproduces it."""


class ChunkTimeoutError(TransientFailure):
    """A fault chunk did not complete within its deadline."""


class WorkerCrashError(TransientFailure):
    """A worker process died (the pool reported itself broken)."""


class CheckpointError(ResilienceError):
    """A checkpoint could not be read or written."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed its integrity check (truncated/corrupt)."""


class ChaosInjectedError(TransientFailure):
    """A chaos-harness-injected transient failure (tests/CI only)."""


class ChaosInjectedFatalError(FatalFailure):
    """A chaos-harness-injected deterministic failure (tests/CI only)."""


class FailureKind(str, Enum):
    """Retry-worthiness of a classified failure."""

    TRANSIENT = "transient"
    FATAL = "fatal"


#: Exception types whose failures are worth retrying even though they do not
#: derive from :class:`TransientFailure`: process-pool breakage, IPC and OS
#: resource errors, and timeouts.  Everything else is a deterministic bug.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    OSError,
    EOFError,
    ConnectionError,
    TimeoutError,
    MemoryError,
)


@dataclass(frozen=True)
class ChunkFailure:
    """One classified chunk failure, ready for the retry ledger."""

    chunk_id: int
    kind: FailureKind
    reason: str
    exception_type: str

    @property
    def transient(self) -> bool:
        return self.kind is FailureKind.TRANSIENT


def classify_failure(exc: BaseException, chunk_id: int = -1) -> ChunkFailure:
    """Classify ``exc`` as transient or fatal for retry decisions.

    ``concurrent.futures`` breakage (``BrokenExecutor`` and the
    pickling-boundary ``BrokenProcessPool``) counts as transient: the worker
    died, the work itself is untainted.
    """
    from concurrent.futures import BrokenExecutor
    from concurrent.futures import TimeoutError as FuturesTimeoutError

    if isinstance(exc, FatalFailure):
        kind = FailureKind.FATAL
    elif isinstance(
        exc,
        (TransientFailure, BrokenExecutor, FuturesTimeoutError) + _TRANSIENT_TYPES,
    ):
        kind = FailureKind.TRANSIENT
    else:
        kind = FailureKind.FATAL
    return ChunkFailure(
        chunk_id=chunk_id,
        kind=kind,
        reason=f"{type(exc).__name__}: {exc}",
        exception_type=type(exc).__name__,
    )
