"""Per-stage pipeline checkpoints keyed by experiment-configuration hash.

A :class:`CheckpointStore` persists each completed pipeline stage's artifact
under ``<root>/<config_hash>/<stage>.ckpt``, so a run killed at stage *n*
resumes from stage *n* instead of zero.  The config hash
(:func:`repro.obs.manifest.config_hash`) keys the directory: a resumed run
can only ever restore artifacts produced by the *identical* configuration,
which is what makes restore-vs-recompute bit-exact by construction.

File format — built for crash-consistency, not compactness::

    repro-checkpoint/1\\n                 magic + format version
    {"stage": ..., "config_hash": ...,
     "payload_sha256": ..., "payload_size": ...}\\n    JSON header
    <pickle payload>                                  exactly payload_size bytes

Writes go to a temp file in the same directory and are published with
``os.replace``, so a crash mid-write never leaves a half-written file under
the final name.  Loads verify size and SHA-256 before unpickling; a
truncated or corrupt file is **never** silently trusted — in tolerant mode
(the pipeline default) it is reported (``warnings.warn`` + the
``resilience.checkpoints_corrupt`` counter) and treated as missing, in
strict mode (the CLI's ``--resume``) it raises
:class:`~repro.resilience.errors.CheckpointCorruptError`.

The ``checkpoint.save`` chaos point lets tests and the CI chaos-smoke job
deliberately publish truncated/corrupt files to exercise both paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from pathlib import Path

from repro import obs
from repro.obs.events import CheckpointEvent
from repro.obs.manifest import config_hash, config_to_dict
from repro.resilience import chaos
from repro.resilience.errors import CheckpointCorruptError, CheckpointError

__all__ = ["CheckpointStore", "CHECKPOINT_MAGIC"]

CHECKPOINT_MAGIC = b"repro-checkpoint/1\n"


class CheckpointStore:
    """Stage-artifact store for one experiment configuration.

    Parameters
    ----------
    root:
        Directory holding one subdirectory per configuration hash.
    config:
        The (dataclass) configuration keying this store.
    strict:
        When True, a corrupt/truncated checkpoint raises
        :class:`CheckpointCorruptError`; when False (default) it is warned
        about, counted, and treated as missing so the stage recomputes.
    """

    def __init__(self, root: str | Path, config: object, strict: bool = False):
        self.root = Path(root)
        self.config_hash = config_hash(config)
        self.dir = self.root / self.config_hash
        self.strict = strict
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"cannot create checkpoint directory {self.dir}: {exc}"
            ) from exc
        config_file = self.dir / "config.json"
        if not config_file.exists():
            try:
                config_file.write_text(
                    json.dumps(config_to_dict(config), indent=2, sort_keys=True)
                    + "\n",
                    encoding="utf-8",
                )
            except OSError as exc:
                raise CheckpointError(
                    f"checkpoint directory {self.dir} is not writable: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    def path_for(self, stage: str) -> Path:
        return self.dir / f"{stage}.ckpt"

    def has(self, stage: str) -> bool:
        """True when a checkpoint file exists for ``stage`` (unverified)."""
        return self.path_for(stage).exists()

    def stages(self) -> list[str]:
        """Names of every stage with a checkpoint file, sorted."""
        return sorted(p.stem for p in self.dir.glob("*.ckpt"))

    def clear(self) -> None:
        """Delete every checkpoint of this configuration."""
        for path in self.dir.glob("*.ckpt"):
            path.unlink(missing_ok=True)

    @staticmethod
    def prune(
        root: str | Path, keep_hashes: set[str] | frozenset[str]
    ) -> tuple[int, int]:
        """Delete per-config directories under ``root`` not in ``keep_hashes``.

        Returns ``(directories_removed, bytes_reclaimed)``.  Only directories
        that look like checkpoint stores — holding a ``config.json`` or at
        least one ``*.ckpt`` file — are candidates; anything else under the
        root is left alone.  ``python -m repro campaign gc`` uses this to
        reclaim checkpoints whose configuration no longer appears in any
        journal or manifest history.
        """
        import shutil

        root = Path(root)
        removed = 0
        reclaimed = 0
        if not root.is_dir():
            return removed, reclaimed
        for entry in sorted(root.iterdir()):
            if not entry.is_dir() or entry.name in keep_hashes:
                continue
            if not (entry / "config.json").exists() and not any(
                entry.glob("*.ckpt")
            ):
                continue
            for path in entry.rglob("*"):
                try:
                    if path.is_file():
                        reclaimed += path.stat().st_size
                except OSError:
                    continue
            shutil.rmtree(entry, ignore_errors=True)
            removed += 1
        return removed, reclaimed

    # ------------------------------------------------------------------
    def save(self, stage: str, payload: object) -> Path:
        """Atomically persist ``payload`` as the checkpoint of ``stage``."""
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"stage {stage!r} payload is not picklable: {exc}"
            ) from exc
        header = json.dumps(
            {
                "stage": stage,
                "config_hash": self.config_hash,
                "payload_sha256": hashlib.sha256(blob).hexdigest(),
                "payload_size": len(blob),
            },
            sort_keys=True,
        ).encode("utf-8")
        data = CHECKPOINT_MAGIC + header + b"\n" + blob

        mangle = chaos.planned_kind("checkpoint.save", key=stage)
        if mangle == "truncate":
            data = data[: max(len(CHECKPOINT_MAGIC), len(data) // 2)]
        elif mangle == "corrupt":
            flip = len(data) - max(1, len(blob) // 2)
            data = data[:flip] + bytes([data[flip] ^ 0xFF]) + data[flip + 1 :]

        path = self.path_for(stage)
        tmp = path.with_suffix(".ckpt.tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise CheckpointError(
                f"cannot write checkpoint {path}: {exc}"
            ) from exc
        obs.inc("resilience.checkpoints_saved")
        return path

    def load(self, stage: str) -> object | None:
        """The verified payload of ``stage``, or None when absent.

        Corrupt/truncated files follow the store's strictness (see class
        docstring); an unreadable directory raises :class:`CheckpointError`
        either way.
        """
        path = self.path_for(stage)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
        try:
            return self._decode(stage, data)
        except CheckpointCorruptError as exc:
            if self.strict:
                raise
            warnings.warn(
                f"discarding corrupt checkpoint for stage {stage!r} ({exc}); "
                "the stage will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
            obs.inc("resilience.checkpoints_corrupt")
            if obs.events_enabled():
                obs.emit(
                    CheckpointEvent(
                        stage=stage, action="corrupt", path=str(path)
                    )
                )
            return None

    def _decode(self, stage: str, data: bytes) -> object:
        path = self.path_for(stage)
        if not data.startswith(CHECKPOINT_MAGIC):
            raise CheckpointCorruptError(f"{path}: bad magic or truncated header")
        rest = data[len(CHECKPOINT_MAGIC) :]
        newline = rest.find(b"\n")
        if newline < 0:
            raise CheckpointCorruptError(f"{path}: truncated header")
        try:
            header = json.loads(rest[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(f"{path}: unparsable header") from exc
        blob = rest[newline + 1 :]
        if header.get("stage") != stage or header.get("config_hash") != self.config_hash:
            raise CheckpointCorruptError(
                f"{path}: header names stage {header.get('stage')!r} / config "
                f"{header.get('config_hash')!r}, expected {stage!r} / "
                f"{self.config_hash!r}"
            )
        if len(blob) != header.get("payload_size"):
            raise CheckpointCorruptError(
                f"{path}: payload is {len(blob)} bytes, header says "
                f"{header.get('payload_size')}"
            )
        if hashlib.sha256(blob).hexdigest() != header.get("payload_sha256"):
            raise CheckpointCorruptError(f"{path}: payload digest mismatch")
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise CheckpointCorruptError(f"{path}: unpicklable payload") from exc
        obs.inc("resilience.checkpoints_loaded")
        return payload
