"""Fault-simulation engine registry.

Two interchangeable engines implement the same protocol (``pack`` /
``run`` / ``run_packed`` / ``_simulate_groups``, a ``width`` attribute and
a ``kind`` tag):

* ``"python"`` — :class:`~repro.simulation.fault_sim.FaultSimulator`, the
  pure-python wide-word reference implementation.  Always available.
* ``"numpy"`` — :class:`~repro.simulation.numpy_sim.NumpyFaultSimulator`,
  the vectorized ``uint64`` bitslice kernel.  Available when numpy imports
  and the platform passes the bitslice :func:`numpy_preflight` (dtype
  width, shift semantics, packing byte order); requires the word width to
  be a multiple of 64.

``resolve_engine`` turns a requested name (including ``"auto"``) into a
concrete engine kind plus a human-readable reason, which flows into
``engine_info()`` and hence the run manifest — an ``auto`` run always
records which engine it picked and why.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuit.library import DEFAULT_WORD_WIDTH
from repro.circuit.netlist import Circuit

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.fault_sim import FaultSimulator
    from repro.simulation.numpy_sim import NumpyFaultSimulator

    Engine = FaultSimulator | NumpyFaultSimulator

__all__ = [
    "ENGINE_NAMES",
    "ENGINE_KINDS",
    "EngineUnavailableError",
    "create_engine",
    "default_crossover",
    "default_width",
    "numpy_preflight",
    "resolve_engine",
]

#: Accepted values for the ``engine=`` knob (CLI ``--engine``).
ENGINE_NAMES = ("python", "numpy", "auto")

#: Concrete engine kinds ``resolve_engine`` can return.
ENGINE_KINDS = ("python", "numpy")

#: Serial/parallel work crossover (``n_faults * n_patterns``) per engine
#: kind: below this the process-pool start-up, engine recompilation and
#: pattern pickling cost more than the fan-out saves.  Calibrated from the
#: attribution gate-eval counters on c880_like (see ``docs/PERFORMANCE.md``
#: and ``BENCH_fault_sim.json``); the numpy kernel's serial throughput is
#: ~7x the python engine's, so its pool overhead amortises ~7x later.
_DEFAULT_CROSSOVERS = {"python": 8_000_000, "numpy": 48_000_000}

_DEFAULT_WIDTHS = {"python": DEFAULT_WORD_WIDTH}

_preflight_cache: tuple[bool, str] | None = None


class EngineUnavailableError(RuntimeError):
    """An explicitly requested engine cannot run on this platform."""


def default_width(kind: str) -> int:
    """Default packed-word width (patterns per group) for an engine kind."""
    if kind == "numpy":
        from repro.simulation.numpy_sim import DEFAULT_NUMPY_WIDTH

        return DEFAULT_NUMPY_WIDTH
    try:
        return _DEFAULT_WIDTHS[kind]
    except KeyError:
        raise ValueError(f"unknown engine kind {kind!r}") from None


def default_crossover(kind: str) -> int:
    """Default serial/parallel work crossover for an engine kind."""
    try:
        return _DEFAULT_CROSSOVERS[kind]
    except KeyError:
        raise ValueError(f"unknown engine kind {kind!r}") from None


def numpy_preflight() -> tuple[bool, str]:
    """Check that the numpy bitslice kernel can run on this platform.

    Returns ``(ok, reason)``.  Beyond importability this functionally
    probes the assumptions the kernel's bit layout rests on: ``uint64`` is
    8 bytes wide, shifts and complements behave as 64-bit operations, and
    ``packbits``-then-``view`` yields little-bit-order words (byte 0 holds
    patterns 0..7).  A platform where any probe fails (exotic endianness,
    a broken numpy build) keeps the python engine as ``auto``'s choice and
    fails an explicit ``--engine numpy`` request up front.

    The verdict is cached for the process lifetime.
    """
    global _preflight_cache
    if _preflight_cache is not None:
        return _preflight_cache
    _preflight_cache = _numpy_preflight_uncached()
    return _preflight_cache


def _numpy_preflight_uncached() -> tuple[bool, str]:
    try:
        import numpy as np
    except Exception as exc:  # pragma: no cover - numpy present in CI
        return False, f"numpy import failed: {exc}"
    try:
        if np.dtype(np.uint64).itemsize != 8:
            return (
                False,
                f"np.uint64 is {np.dtype(np.uint64).itemsize} bytes, not 8",
            )
        if int(np.uint64(1) << np.uint64(63)) != 1 << 63:
            return False, "uint64 left shift is not 64-bit"
        if int(~np.uint64(0)) != (1 << 64) - 1:
            return False, "uint64 complement is not 64-bit"
        bits = np.zeros((64, 1), dtype=np.uint8)
        bits[[0, 2, 3, 63], 0] = 1
        word = (
            np.packbits(bits, axis=0, bitorder="little")
            .T.copy()
            .view(np.uint64)
        )
        expected = (1 << 0) | (1 << 2) | (1 << 3) | (1 << 63)
        if int(word[0, 0]) != expected:
            return (
                False,
                "bitslice word packing disagrees with the little-bit-order "
                "layout (byte order mismatch)",
            )
    except Exception as exc:
        return False, f"numpy bitslice probe failed: {type(exc).__name__}: {exc}"
    return True, "uint64 bitslice probes passed"


def resolve_engine(
    name: str = "auto", width: int | None = None
) -> tuple[str, str]:
    """Resolve an ``engine=`` request into ``(kind, reason)``.

    ``"auto"`` prefers the numpy kernel and falls back to python when the
    preflight fails or the requested width is not a whole number of uint64
    words; the reason string records the decision for ``engine_info()`` and
    the run manifest.  An explicit ``"numpy"`` request that cannot be
    honoured raises :class:`EngineUnavailableError` instead of silently
    degrading.
    """
    if name not in ENGINE_NAMES:
        known = ", ".join(ENGINE_NAMES)
        raise ValueError(f"unknown engine {name!r} (choose from: {known})")
    if name == "python":
        return "python", "requested"
    width_ok = width is None or (width >= 64 and width % 64 == 0)
    if name == "numpy":
        ok, reason = numpy_preflight()
        if not ok:
            raise EngineUnavailableError(
                f"numpy engine unavailable: {reason}"
            )
        if not width_ok:
            raise EngineUnavailableError(
                "numpy engine requires a word width that is a positive "
                f"multiple of 64, got {width}"
            )
        return "numpy", "requested"
    # auto
    if not width_ok:
        return (
            "python",
            f"auto: width {width} is not a multiple of 64, numpy engine "
            "needs whole uint64 words",
        )
    ok, reason = numpy_preflight()
    if not ok:
        return "python", f"auto: {reason}"
    return "numpy", f"auto: {reason}"


def create_engine(
    name: str,
    circuit: Circuit,
    width: int | None = None,
) -> "Engine":
    """Construct a fault-simulation engine by name (``"auto"`` resolves).

    ``width=None`` uses the resolved engine's default width
    (:func:`default_width`); the python engine default is
    ``DEFAULT_WORD_WIDTH``, the numpy kernel prefers wider blocks.
    """
    kind, _ = resolve_engine(name, width)
    if width is None:
        width = default_width(kind)
    if kind == "numpy":
        from repro.simulation.numpy_sim import NumpyFaultSimulator

        return NumpyFaultSimulator(circuit, width=width)
    from repro.simulation.fault_sim import FaultSimulator

    return FaultSimulator(circuit, width=width)
