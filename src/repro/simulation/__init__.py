"""Gate-level simulation substrate: logic sim, stuck-at faults, fault sim."""

from repro.simulation.fault_sim import FaultSimResult, FaultSimulator
from repro.simulation.faults import (
    FaultSite,
    StuckAtFault,
    collapse_faults,
    full_fault_universe,
)
from repro.simulation.logic_sim import LogicSimulator, pack_patterns, unpack_word
from repro.simulation.parallel import DEFAULT_CROSSOVER, ParallelFaultSimulator
from repro.simulation.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    TransitionSimResult,
    transition_universe,
)

__all__ = [
    "DEFAULT_CROSSOVER",
    "FaultSimResult",
    "FaultSimulator",
    "FaultSite",
    "LogicSimulator",
    "ParallelFaultSimulator",
    "StuckAtFault",
    "TransitionFault",
    "TransitionFaultSimulator",
    "TransitionSimResult",
    "collapse_faults",
    "full_fault_universe",
    "pack_patterns",
    "transition_universe",
    "unpack_word",
]
