"""Gate-level simulation substrate: logic sim, stuck-at faults, fault sim."""

from repro.simulation.engines import (
    ENGINE_KINDS,
    ENGINE_NAMES,
    EngineUnavailableError,
    create_engine,
    numpy_preflight,
    resolve_engine,
)
from repro.simulation.fault_sim import ConeIndex, FaultSimResult, FaultSimulator
from repro.simulation.faults import (
    FaultSite,
    StuckAtFault,
    collapse_faults,
    full_fault_universe,
)
from repro.simulation.logic_sim import LogicSimulator, pack_patterns, unpack_word
from repro.simulation.numpy_sim import NumpyFaultSimulator, pack_bitslice
from repro.simulation.parallel import DEFAULT_CROSSOVER, ParallelFaultSimulator
from repro.simulation.transition import (
    TransitionFault,
    TransitionFaultSimulator,
    TransitionSimResult,
    transition_universe,
)

__all__ = [
    "DEFAULT_CROSSOVER",
    "ENGINE_KINDS",
    "ENGINE_NAMES",
    "ConeIndex",
    "EngineUnavailableError",
    "FaultSimResult",
    "FaultSimulator",
    "FaultSite",
    "LogicSimulator",
    "NumpyFaultSimulator",
    "ParallelFaultSimulator",
    "StuckAtFault",
    "TransitionFault",
    "TransitionFaultSimulator",
    "TransitionSimResult",
    "collapse_faults",
    "create_engine",
    "full_fault_universe",
    "numpy_preflight",
    "pack_bitslice",
    "pack_patterns",
    "resolve_engine",
    "transition_universe",
    "unpack_word",
]
