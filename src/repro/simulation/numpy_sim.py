"""Numpy ``uint64`` bitslice fault-simulation engine.

This is the performance engine behind the ``engine="numpy"`` knob (see
:mod:`repro.simulation.engines`); the pure-python wide-word
:class:`~repro.simulation.fault_sim.FaultSimulator` remains the reference
implementation and both engines are bit-exact against each other
(``tests/test_engines.py``).

Layout
------
Patterns are packed 64 per ``uint64`` word into contiguous arrays: the
packed input set is ``(n_words, n_inputs)``-shaped and the fault-free
("good") machine is evaluated one *block* of ``width`` patterns at a time
into a ``(words_per_block, n_nets)``-shaped array, one vectorized bitwise
op per gate.  ``width`` must be a multiple of 64 — the block is the
detection-count group, so matching the python engine's group extent is
what makes drop-mode ``detection_counts`` bit-exact.

Faulty machines are evaluated in *lane batches*: faults are ordered
cheapest-cone-first (the same static order as the python engine) and
partitioned into batches of ``lane_batch`` lanes.  Each batch compiles one
schedule over the union of its cones; slots are ``(n_lanes, words)``
arrays, so every gate in the union is evaluated for all lanes of the batch
with a single vectorized op.  Gates in the union whose inputs are entirely
fault-free collapse to a copy of the good column at compile time.  Per-lane
fault forcing (stuck rows seeded before evaluation, driver outputs
overwritten after evaluation, pin-operand overrides) keeps each lane's
primary-output values exactly equal to what a cone-restricted single-fault
resimulation would produce: gates outside a lane's own cone cannot be
reached by its fault, so they compute fault-free values for that lane.

Good-machine values are computed once per block and shared by every batch;
fault dropping retires lanes at their first detecting block and skips a
batch entirely once all of its lanes have dropped.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.circuit.netlist import Circuit
from repro.obs import attribution
from repro.simulation.fault_sim import ConeIndex, FaultSimResult
from repro.simulation.faults import FaultSite, StuckAtFault, full_fault_universe
from repro.simulation.logic_sim import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    LogicSimulator,
)

__all__ = [
    "DEFAULT_NUMPY_WIDTH",
    "DEFAULT_LANE_BATCH",
    "NumpyFaultSimulator",
    "pack_bitslice",
]

#: Default block extent (patterns per detection group) for the numpy engine.
#: Wider than the python default: the vectorized kernel amortises per-gate
#: dispatch over ``width // 64`` words *and* ``lane_batch`` lanes at once.
DEFAULT_NUMPY_WIDTH = 1024

#: Default number of faults evaluated per union-of-cones batch.
DEFAULT_LANE_BATCH = 64

_U64_ONES = np.uint64(0xFFFF_FFFF_FFFF_FFFF)
_U64_ZERO = np.uint64(0)

#: Sentinel opcode: the gate's inputs are all fault-free in this batch, so
#: its output is a copy of the good-machine column (no evaluation needed).
_OP_GOOD = -1

#: op -> (core bitwise ufunc, invert result?)
_CORE_UFUNC = {
    OP_AND: (np.bitwise_and, False),
    OP_NAND: (np.bitwise_and, True),
    OP_OR: (np.bitwise_or, False),
    OP_NOR: (np.bitwise_or, True),
    OP_XOR: (np.bitwise_xor, False),
    OP_XNOR: (np.bitwise_xor, True),
}

_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")


def pack_bitslice(
    patterns: Sequence[Sequence[int]], n_inputs: int
) -> np.ndarray:
    """Pack patterns into a ``(n_words, n_inputs)`` ``uint64`` bitslice array.

    Bit ``p`` of word ``w`` in column ``i`` carries pattern ``w * 64 + p``'s
    value for primary input ``i`` — the same bit order as
    :func:`repro.simulation.logic_sim.pack_patterns`, 64 patterns per word.
    """
    n_patterns = len(patterns)
    if n_patterns == 0:
        return np.zeros((0, n_inputs), dtype=np.uint64)
    try:
        mat = np.asarray(patterns)
    except ValueError as exc:  # ragged rows
        raise ValueError(f"inconsistent pattern lengths: {exc}") from exc
    if mat.ndim != 2 or mat.shape[1] != n_inputs:
        raise ValueError(
            f"patterns have shape {mat.shape}, expected ({n_patterns}, {n_inputs})"
        )
    bits = (mat != 0).astype(np.uint8)
    n_words = -(-n_patterns // 64)
    # Pack per input column, little bit order, then view each input's padded
    # byte row as uint64 words (byte 0 == bits 0..7 — verified by the engine
    # preflight on platforms where the byte order could differ).
    packed_bytes = np.packbits(bits, axis=0, bitorder="little")
    padded = np.zeros((n_inputs, n_words * 8), dtype=np.uint8)
    padded[:, : packed_bytes.shape[0]] = packed_bytes.T
    words = padded.view(np.uint64)  # (n_inputs, n_words)
    return np.ascontiguousarray(words.T)


def _popcount(words: np.ndarray) -> int:
    """Total set-bit count over a 1-d uint64 array."""
    if _HAVE_BITWISE_COUNT:
        return int(np.bitwise_count(words).sum())
    return sum(int(w).bit_count() for w in words.tolist())


class _BatchProgram:
    """One lane batch's compiled union-of-cones schedule.

    ``refs`` entries encode operand sources like the python engine's
    programs: ``ref >= 0`` reads the good-machine column ``good[:, ref]``;
    ``ref < 0`` reads the batch-local slot ``local[~ref]`` (an
    ``(n_lanes, words)`` array).  Gates compiled to :data:`_OP_GOOD` carry
    their output net id as the single ref.
    """

    __slots__ = (
        "faults",
        "n_lanes",
        "ops",
        "refs",
        "out_slots",
        "po_refs",
        "n_slots",
        "seeds",
        "init_forces",
        "post_forces",
        "pin_overrides",
        "union_size",
        "cone_sizes",
    )

    def __init__(self) -> None:
        self.faults: list[StuckAtFault] = []
        self.n_lanes = 0
        self.ops: list[int] = []
        self.refs: list[tuple[int, ...]] = []
        self.out_slots: list[int] = []
        self.po_refs: list[tuple[int, int]] = []  # (slot, po net id)
        self.n_slots = 0
        self.seeds: list[tuple[int, int]] = []  # (slot, good net id)
        self.init_forces: list[tuple[int, int, bool]] = []  # slot, lane, stuck
        self.post_forces: dict[int, list[tuple[int, int, bool]]] = {}
        self.pin_overrides: dict[int, list[tuple[int, int, bool]]] = {}
        self.union_size = 0
        self.cone_sizes: list[int] = []


class NumpyFaultSimulator:
    """Bitslice parallel-pattern stuck-at fault simulator (numpy engine).

    Bit-exact against :class:`~repro.simulation.fault_sim.FaultSimulator`
    for every ``FaultSimResult`` field, provided both engines use the same
    ``width`` (the detection-count group extent).

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    width:
        Patterns per block (detection group extent).  Must be a positive
        multiple of 64 — blocks are whole ``uint64`` words.
    lane_batch:
        Faults evaluated per union-of-cones batch.  A pure tuning knob
        (results are identical for any value >= 1): more lanes amortise
        per-gate dispatch further but widen the cone unions.
    """

    #: Engine-registry kind (see :mod:`repro.simulation.engines`).
    kind = "numpy"

    def __init__(
        self,
        circuit: Circuit,
        width: int = DEFAULT_NUMPY_WIDTH,
        lane_batch: int = DEFAULT_LANE_BATCH,
    ) -> None:
        if width < 64 or width % 64:
            raise ValueError(
                "numpy engine width must be a positive multiple of 64 "
                f"(whole uint64 words), got {width}"
            )
        if lane_batch < 1:
            raise ValueError(f"lane_batch must be positive, got {lane_batch}")
        self.circuit = circuit
        self.width = width
        self.lane_batch = lane_batch
        self.logic = LogicSimulator(circuit, width=width)
        self.cones = ConeIndex(self.logic)
        self._n_inputs = len(circuit.primary_inputs)
        self.words_per_block = width // 64
        self._batch_memo: dict[tuple[StuckAtFault, ...], _BatchProgram] = {}

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    def pack(self, patterns: Sequence[Sequence[int]]) -> np.ndarray:
        """Pack ``patterns`` into this engine's bitslice array form."""
        return pack_bitslice(patterns, self._n_inputs)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def cone_size(self, fault: StuckAtFault) -> int:
        """Number of gates in ``fault``'s output cone."""
        return len(self.cones.fault_cone(fault).gate_idx)

    def _compile_batch(self, faults: tuple[StuckAtFault, ...]) -> _BatchProgram:
        """Compile one lane batch into a union-of-cones slot schedule."""
        program = self._batch_memo.get(faults)
        if program is not None:
            return program
        logic = self.logic
        cones = self.cones
        out_ids = logic.out_ids
        prog = _BatchProgram()
        prog.faults = list(faults)
        prog.n_lanes = len(faults)

        fault_cones = [cones.fault_cone(f) for f in faults]
        union_gates = sorted(set().union(*(c.gate_idx for c in fault_cones)))
        pos_of = {gi: pos for pos, gi in enumerate(union_gates)}
        slot_of = {out_ids[gi]: slot for slot, gi in enumerate(union_gates)}
        n_slots = len(union_gates)

        # Per-lane fault forcing.  A forced net driven inside the union
        # keeps its driver (other lanes need the fault-free value) and the
        # faulty lane's row is overwritten right after the driver writes it;
        # a forced net with no driver in the union gets a slot seeded from
        # the good column with the faulty lane's row forced up front.  Pin
        # faults override a single gate's view of one operand for one lane.
        force_slot: dict[int, int] = {}
        for lane, fault in enumerate(faults):
            nid = logic.net_id[fault.net]
            stuck = bool(fault.value)
            if fault.site is FaultSite.NET:
                slot = slot_of.get(nid)
                if slot is not None:
                    driver_pos = pos_of[cones.driver_gate[nid]]
                    prog.post_forces.setdefault(driver_pos, []).append(
                        (slot, lane, stuck)
                    )
                else:
                    slot = force_slot.get(nid)
                    if slot is None:
                        slot = n_slots
                        n_slots += 1
                        force_slot[nid] = slot
                        prog.seeds.append((slot, nid))
                    prog.init_forces.append((slot, lane, stuck))
            else:
                gi = cones.gate_index[fault.gate]
                prog.pin_overrides.setdefault(pos_of[gi], []).append(
                    (fault.pin, lane, stuck)
                )

        ops_all = logic.ops
        in_ids = logic.in_ids
        for pos, gi in enumerate(union_gates):
            gate_refs: list[int] = []
            for nid in in_ids[gi]:
                slot = slot_of.get(nid)
                if slot is None:
                    slot = force_slot.get(nid)
                if slot is not None:
                    gate_refs.append(~slot)
                else:
                    gate_refs.append(nid)
            overridden = pos in prog.pin_overrides
            if not overridden and all(ref >= 0 for ref in gate_refs):
                # Entirely fault-free inputs for every lane: the output is
                # the good column, no evaluation needed.
                prog.ops.append(_OP_GOOD)
                prog.refs.append((out_ids[gi],))
            else:
                if not overridden and gate_refs[0] >= 0:
                    # Put a lane-shaped (2-d) operand first so in-place
                    # evaluation has a full-shape anchor; every compiled op
                    # core is commutative, and operand order only matters
                    # to pin overrides, which pin this gate to the slow
                    # path anyway.
                    first = next(
                        i for i, ref in enumerate(gate_refs) if ref < 0
                    )
                    gate_refs[0], gate_refs[first] = (
                        gate_refs[first],
                        gate_refs[0],
                    )
                prog.ops.append(ops_all[gi])
                prog.refs.append(tuple(gate_refs))
            prog.out_slots.append(slot_of[out_ids[gi]])

        po_seen: set[int] = set()
        for cone in fault_cones:
            for po in cone.po_ids:
                if po in po_seen:
                    continue
                po_seen.add(po)
                slot = slot_of.get(po)
                if slot is None:
                    slot = force_slot.get(po)
                if slot is not None:
                    prog.po_refs.append((slot, po))
                # Otherwise the cone output keeps its fault-free value for
                # every lane (a pin-faulted net that is itself a PO): the
                # diff is identically 0.

        prog.n_slots = n_slots
        prog.union_size = len(union_gates)
        prog.cone_sizes = [len(c.gate_idx) for c in fault_cones]
        self._batch_memo[faults] = prog
        return prog

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _good_block(self, block_words: np.ndarray) -> np.ndarray:
        """Fault-free simulation of one block: ``(words, n_nets)`` values."""
        logic = self.logic
        n_words = block_words.shape[0]
        values = np.zeros((n_words, logic.n_nets), dtype=np.uint64)
        values[:, : self._n_inputs] = block_words
        in_ids = logic.in_ids
        out_ids = logic.out_ids
        for i, op in enumerate(logic.ops):
            ids = in_ids[i]
            out = values[:, out_ids[i]]
            if op == OP_BUF:
                out[...] = values[:, ids[0]]
                continue
            if op == OP_NOT:
                np.bitwise_not(values[:, ids[0]], out=out)
                continue
            core, invert = _CORE_UFUNC[op]
            core(values[:, ids[0]], values[:, ids[1]], out=out)
            for nid in ids[2:]:
                core(out, values[:, nid], out=out)
            if invert:
                np.bitwise_not(out, out=out)
        return values

    def _run_batch(
        self,
        prog: _BatchProgram,
        good: np.ndarray,
        local: np.ndarray,
        diff: np.ndarray,
        tmp: np.ndarray,
    ) -> np.ndarray:
        """Evaluate one batch over one good block; return per-lane diffs.

        ``local`` is the ``(n_slots, n_lanes, words)`` scratch, ``diff`` and
        ``tmp`` are ``(n_lanes, words)`` scratch; all are caller-provided
        views so buffers are reused across blocks and batches.
        """
        n_lanes, n_words = diff.shape
        for slot, nid in prog.seeds:
            local[slot][...] = good[:, nid]
        for slot, lane, stuck in prog.init_forces:
            local[slot][lane, :] = _U64_ONES if stuck else _U64_ZERO

        ops = prog.ops
        refs = prog.refs
        out_slots = prog.out_slots
        post_forces = prog.post_forces
        pin_overrides = prog.pin_overrides
        for pos in range(len(ops)):
            op = ops[pos]
            ids = refs[pos]
            out = local[out_slots[pos]]
            if op == _OP_GOOD:
                out[...] = good[:, ids[0]]
            elif op == OP_BUF or op == OP_NOT:
                override = pin_overrides.get(pos)
                if override is None:
                    source = local[~ids[0]]
                else:
                    source = self._overridden_operands(
                        ids, override, local, good, n_lanes, n_words
                    )[0]
                if op == OP_BUF:
                    out[...] = source
                else:
                    np.bitwise_not(source, out=out)
            else:
                core, invert = _CORE_UFUNC[op]
                override = pin_overrides.get(pos)
                if override is None:
                    first = local[~ids[0]]
                    second = local[~ids[1]] if ids[1] < 0 else good[:, ids[1]]
                    core(first, second, out=out)
                    for ref in ids[2:]:
                        operand = local[~ref] if ref < 0 else good[:, ref]
                        core(out, operand, out=out)
                else:
                    operands = self._overridden_operands(
                        ids, override, local, good, n_lanes, n_words
                    )
                    # Anchor the fold on a lane-shaped operand (the
                    # override materialised at least one); the cores are
                    # commutative so reordering is free.
                    anchor = next(
                        i for i, arr in enumerate(operands) if arr.ndim == 2
                    )
                    operands[0], operands[anchor] = (
                        operands[anchor],
                        operands[0],
                    )
                    core(operands[0], operands[1], out=out)
                    for operand in operands[2:]:
                        core(out, operand, out=out)
                if invert:
                    np.bitwise_not(out, out=out)
            forces = post_forces.get(pos)
            if forces:
                for slot, lane, stuck in forces:
                    local[slot][lane, :] = _U64_ONES if stuck else _U64_ZERO

        diff[...] = _U64_ZERO
        for slot, po in prog.po_refs:
            np.bitwise_xor(local[slot], good[:, po], out=tmp)
            np.bitwise_or(diff, tmp, out=diff)
        return diff

    @staticmethod
    def _overridden_operands(
        ids: tuple[int, ...],
        override: list[tuple[int, int, bool]],
        local: np.ndarray,
        good: np.ndarray,
        n_lanes: int,
        n_words: int,
    ) -> list[np.ndarray]:
        """Materialise a gate's operands with per-lane pin forces applied."""
        operands: list[np.ndarray] = [
            local[~ref] if ref < 0 else good[:, ref] for ref in ids
        ]
        forced_pins = {pin for pin, _, _ in override}
        for pin in forced_pins:
            forced = np.empty((n_lanes, n_words), dtype=np.uint64)
            forced[...] = operands[pin]
            operands[pin] = forced
        for pin, lane, stuck in override:
            operands[pin][lane, :] = _U64_ONES if stuck else _U64_ZERO
        return operands

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns`` against ``faults`` (default: universe)."""
        packed = self.pack(patterns)
        return self.run_packed(packed, len(patterns), faults, drop_detected)

    def run_packed(
        self,
        packed: np.ndarray,
        n_patterns: int,
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate a pre-packed bitslice array (from :meth:`pack`)."""
        if faults is None:
            faults = full_fault_universe(self.circuit)
        first_detection, detection_counts = self._simulate_groups(
            packed, n_patterns, faults, drop_detected
        )
        obs.set_gauge("fault_sim.word_width", self.width)
        obs.inc("fault_sim.patterns_applied", n_patterns)
        obs.inc("fault_sim.faults_simulated", len(faults))
        if drop_detected:
            obs.inc("fault_sim.faults_dropped", len(first_detection))
        obs.inc("fault_sim.detections", sum(detection_counts.values()))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=n_patterns,
            detection_counts=detection_counts,
        )

    def _simulate_groups(
        self,
        packed: np.ndarray,
        n_patterns: int,
        faults: list[StuckAtFault],
        drop_detected: bool,
    ) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
        """The simulation core: span + block loop, **no counter updates**.

        Mirrors the python engine's contract exactly (see
        :meth:`FaultSimulator._simulate_groups`): :meth:`run_packed` layers
        the ``fault_sim.*`` counters on top and the parallel fan-out's
        salvage path calls this directly.
        """
        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        width = self.width
        words_per_block = self.words_per_block
        n_words_total = packed.shape[0]
        expected_words = -(-n_patterns // 64)
        if n_words_total != expected_words:
            raise ValueError(
                f"packed array has {n_words_total} words, expected "
                f"{expected_words} for {n_patterns} patterns"
            )
        emit_progress = obs.events_enabled()
        with obs.span(
            "fault_sim.run",
            n_patterns=n_patterns,
            n_faults=len(faults),
            word_width=width,
            engine=self.kind,
        ):
            # Static cheapest-cone-first order, then fixed lane batches:
            # small (easily detected) cones share batches and retire early,
            # so surviving blocks only pay for the big unions that are
            # genuinely undetected.
            ordered = sorted(faults, key=self.cone_size)
            lane_batch = self.lane_batch
            programs = [
                self._compile_batch(tuple(ordered[start : start + lane_batch]))
                for start in range(0, len(ordered), lane_batch)
            ]
            alive = [
                np.ones(prog.n_lanes, dtype=bool) for prog in programs
            ]
            batch_alive = [prog.n_lanes for prog in programs]
            remaining = len(ordered)

            attr = attribution.collector()
            if attr is not None:
                n_buckets = attribution.N_CONE_BUCKETS
                bucket_evals = [0] * n_buckets
                bucket_faults = [0] * n_buckets
                lane_buckets = [
                    [
                        attribution.cone_bucket_index(size)
                        for size in prog.cone_sizes
                    ]
                    for prog in programs
                ]
                for buckets in lane_buckets:
                    for bucket in buckets:
                        bucket_faults[bucket] += 1
                good_size = len(self.logic.ops)
                gate_evals = good_gate_evals = 0
                pattern_blocks = pattern_bytes = 0
                block_drops: dict[int, int] = {}

            # Scratch buffers shared across blocks and batches.
            max_slots = max((prog.n_slots for prog in programs), default=0)
            local_buf = np.empty(
                (max_slots, lane_batch, words_per_block), dtype=np.uint64
            )
            diff_buf = np.empty((lane_batch, words_per_block), dtype=np.uint64)
            tmp_buf = np.empty_like(diff_buf)
            tail_bits = n_patterns % 64
            # A no-op all-ones mask when the pattern count is word-aligned:
            # masks_tail below never fires then, and the mask stays non-None.
            tail_mask = (
                np.uint64((1 << tail_bits) - 1) if tail_bits else _U64_ONES
            )

            n_blocks = -(-n_words_total // words_per_block) if n_patterns else 0
            for block_index in range(n_blocks):
                if not programs or (drop_detected and remaining == 0):
                    break
                word_lo = block_index * words_per_block
                word_hi = min(word_lo + words_per_block, n_words_total)
                n_words = word_hi - word_lo
                base = block_index * width
                n_here = min(width, n_patterns - base)
                good = self._good_block(packed[word_lo:word_hi])
                if attr is not None:
                    good_gate_evals += good_size
                    pattern_blocks += 1
                    pattern_bytes += self._n_inputs * width // 8
                masks_tail = tail_bits != 0 and word_hi == n_words_total
                for batch_index, prog in enumerate(programs):
                    if drop_detected and batch_alive[batch_index] == 0:
                        continue
                    n_lanes = prog.n_lanes
                    local = local_buf[: prog.n_slots, :n_lanes, :n_words]
                    diff = diff_buf[:n_lanes, :n_words]
                    tmp = tmp_buf[:n_lanes, :n_words]
                    self._run_batch(prog, good, local, diff, tmp)
                    if attr is not None:
                        gate_evals += prog.union_size * n_lanes
                        union = prog.union_size
                        for bucket in lane_buckets[batch_index]:
                            bucket_evals[bucket] += union
                    if masks_tail:
                        diff[:, -1] &= tail_mask
                    lane_alive = alive[batch_index]
                    hits = np.nonzero(diff.any(axis=1))[0]
                    for row in hits:
                        lane = int(row)
                        if drop_detected and not lane_alive[lane]:
                            continue
                        words = diff[lane]
                        nz = np.nonzero(words)[0]
                        first_word = int(nz[0])
                        value = int(words[first_word])
                        first = (
                            base
                            + first_word * 64
                            + (value & -value).bit_length()
                        )
                        fault = prog.faults[lane]
                        if fault not in first_detection:
                            first_detection[fault] = first
                        detection_counts[fault] = detection_counts.get(
                            fault, 0
                        ) + _popcount(words)
                        if drop_detected:
                            lane_alive[lane] = False
                            batch_alive[batch_index] -= 1
                            remaining -= 1
                            if attr is not None:
                                block_drops[block_index] = (
                                    block_drops.get(block_index, 0) + 1
                                )
                if emit_progress and faults:
                    faults_remaining = (
                        remaining if drop_detected else len(faults)
                    )
                    obs.emit(
                        obs.ProgressEvent(
                            stage="fault_sim",
                            completed=base + n_here,
                            total=n_patterns,
                            unit="patterns",
                            data={
                                "faults_remaining": faults_remaining,
                                "detection_rate": len(first_detection)
                                / len(faults),
                            },
                        )
                    )
            if attr is not None:
                attr.add("stage.fault_sim.gate_evals", gate_evals)
                attr.add("stage.fault_sim.good_gate_evals", good_gate_evals)
                attr.add(
                    "stage.fault_sim.words_simulated",
                    gate_evals + good_gate_evals,
                )
                attr.add("stage.fault_sim.pattern_blocks", pattern_blocks)
                attr.add("stage.fault_sim.pattern_bytes", pattern_bytes)
                for bucket in range(n_buckets):
                    if bucket_faults[bucket]:
                        label = attribution.cone_bucket_label(bucket)
                        attr.add(f"cone.{label}.faults", bucket_faults[bucket])
                        attr.add(
                            f"cone.{label}.gate_evals", bucket_evals[bucket]
                        )
                for block, drops in block_drops.items():
                    attr.add(f"block.{block:04d}.faults_dropped", drops)
        return first_detection, detection_counts
