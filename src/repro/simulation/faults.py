"""Single stuck-at fault universe and structural fault collapsing.

The stuck-at universe for a circuit contains a stuck-at-0 and stuck-at-1 fault
on every *fault site*: each primary input, each gate output net, and each gate
input pin (pin faults are distinct from the driving net's fault whenever the
net fans out to more than one pin — the classic checkpoint refinement).

Collapsing here uses structural equivalence across single-input chains and the
standard gate-local equivalences (e.g. any input s-a-0 of an AND is equivalent
to its output s-a-0), matching common industrial practice of reporting
equivalence-collapsed coverage.  Dominance-based collapsing — which can shrink
the universe further but only preserves detection, not equivalence — is
layered on top by :func:`repro.analysis.collapse.dominance_collapse`, built on
the class structure :func:`collapse_with_classes` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = [
    "StuckAtFault",
    "FaultSite",
    "full_fault_universe",
    "collapse_faults",
    "collapse_with_classes",
    "fanout_pin_counts",
]


class FaultSite(str, Enum):
    """Where a stuck-at fault attaches."""

    NET = "net"          # the driven net itself (output of driver / PI)
    GATE_INPUT = "pin"   # a specific gate input pin (branch after fanout)


@dataclass(frozen=True)
class StuckAtFault:
    """One single stuck-at fault.

    Attributes
    ----------
    net:
        The net the fault is on (for pin faults, the net feeding the pin).
    value:
        The stuck value, 0 or 1.
    site:
        NET for stem faults, GATE_INPUT for branch (pin) faults.
    gate:
        For pin faults, the name of the gate whose input pin is faulty.
    pin:
        For pin faults, the input position on that gate.
    """

    net: str
    value: int
    site: FaultSite = FaultSite.NET
    gate: str | None = None
    pin: int | None = None

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"stuck value must be 0 or 1, got {self.value}")
        if self.site is FaultSite.GATE_INPUT and (self.gate is None or self.pin is None):
            raise ValueError("pin faults need gate and pin")

    def __str__(self) -> str:
        if self.site is FaultSite.NET:
            return f"{self.net}/sa{self.value}"
        return f"{self.gate}.in{self.pin}({self.net})/sa{self.value}"


def full_fault_universe(circuit: Circuit) -> list[StuckAtFault]:
    """Enumerate the uncollapsed single stuck-at universe for ``circuit``.

    Stem faults on every net; branch (pin) faults on every gate input whose
    driving net fans out to more than one pin, where a stem fault would not
    model the independent branch defect.
    """
    faults: list[StuckAtFault] = []
    for net in circuit.nets:
        faults.append(StuckAtFault(net, 0))
        faults.append(StuckAtFault(net, 1))

    fanout_count = fanout_pin_counts(circuit)

    for gate in circuit.gates:
        for pin, net in enumerate(gate.inputs):
            if fanout_count.get(net, 0) > 1:
                faults.append(
                    StuckAtFault(net, 0, FaultSite.GATE_INPUT, gate.name, pin)
                )
                faults.append(
                    StuckAtFault(net, 1, FaultSite.GATE_INPUT, gate.name, pin)
                )
    return faults


def fanout_pin_counts(circuit: Circuit) -> dict[str, int]:
    """Reader-pin count per net; primary outputs count as one extra reader.

    This is the fanout convention shared by the fault universe (pin faults
    exist only where the count exceeds one) and the structural linter's
    fanout histogram.
    """
    fanout_count: dict[str, int] = {}
    for gate in circuit.gates:
        for net in gate.inputs:
            fanout_count[net] = fanout_count.get(net, 0) + 1
    for po in circuit.primary_outputs:
        fanout_count[po] = fanout_count.get(po, 0) + 1
    return fanout_count


# Gate-local equivalence: which input stuck value collapses into which output
# stuck value.  For AND: in/sa0 == out/sa0; for OR: in/sa1 == out/sa1, etc.
_COLLAPSE_INPUT_VALUE = {
    GateType.AND: {0: 0},
    GateType.NAND: {0: 1},
    GateType.OR: {1: 1},
    GateType.NOR: {1: 0},
    GateType.NOT: {0: 1, 1: 0},
    GateType.BUF: {0: 0, 1: 1},
}


def collapse_faults(
    circuit: Circuit, faults: list[StuckAtFault] | None = None
) -> list[StuckAtFault]:
    """Equivalence-collapse a fault list; return representative faults.

    Two faults are merged when they are provably equivalent by gate-local
    structure: controlling-value input faults fold into the output fault, and
    inverter/buffer chains propagate equivalence transitively.  For nets with
    a single fanout pin, the pin fault is equivalent to the stem fault.

    The returned representatives are chosen as the most downstream member of
    each class (closest to the outputs), which keeps detection semantics
    identical.
    """
    collapsed, _ = collapse_with_classes(circuit, faults)
    return collapsed


def collapse_with_classes(
    circuit: Circuit, faults: list[StuckAtFault] | None = None
) -> tuple[list[StuckAtFault], dict[StuckAtFault, StuckAtFault]]:
    """Equivalence-collapse and also return the class structure.

    Returns ``(collapsed, rep_of)`` where ``collapsed`` is exactly what
    :func:`collapse_faults` returns and ``rep_of`` maps every input fault to
    its chosen class representative (a member of ``collapsed``).  Dominance
    collapsing consumes the map to reason about whole equivalence classes.
    """
    if faults is None:
        faults = full_fault_universe(circuit)

    fanout_count = fanout_pin_counts(circuit)

    parent: dict[StuckAtFault, StuckAtFault] = {}

    def find(f: StuckAtFault) -> StuckAtFault:
        root = f
        while root in parent:
            root = parent[root]
        while f in parent and parent[f] is not root:
            f, parent[f] = parent[f], root
        return root

    def union(child: StuckAtFault, rep: StuckAtFault) -> None:
        child_root, rep_root = find(child), find(rep)
        if child_root != rep_root:
            parent[child_root] = rep_root

    po_set = set(circuit.primary_outputs)
    for gate in circuit.gates:
        mapping = _COLLAPSE_INPUT_VALUE.get(gate.gate_type, {})
        for in_value, out_value in mapping.items():
            out_fault = StuckAtFault(gate.output, out_value)
            for pin, net in enumerate(gate.inputs):
                if fanout_count.get(net, 0) > 1:
                    src = StuckAtFault(
                        net, in_value, FaultSite.GATE_INPUT, gate.name, pin
                    )
                else:
                    src = StuckAtFault(net, in_value)
                    # A net observed at a PO must keep its own stem fault: the
                    # fault is visible at the output even if the gate masks it.
                    if net in po_set:
                        continue
                union(src, out_fault)

    universe = set(faults)
    representatives: dict[StuckAtFault, StuckAtFault] = {}
    collapsed: list[StuckAtFault] = []
    rep_of: dict[StuckAtFault, StuckAtFault] = {}
    for fault in faults:
        root = find(fault)
        # The root might not be in the provided subset; keep the first member
        # seen as representative in that case.
        rep = representatives.get(root)
        if rep is None:
            rep = root if root in universe else fault
            representatives[root] = rep
            collapsed.append(rep)
        rep_of[fault] = rep
    return collapsed, rep_of
