"""Parallel-pattern single stuck-at fault simulation.

For every fault the simulator re-evaluates only the fault's output cone with
the faulty value forced, ``W`` patterns at a time (default 256), and compares
primary outputs against the fault-free simulation.  Detected faults are
dropped from further simulation.  The result records each fault's
*first-detection index*, which is exactly what the paper's ``T(k)``
coverage-growth curves are built from, plus its *detection count* over the
simulated horizon — the per-fault n-detection telemetry that
Pomeranz-&-Reddy-style analyses consume downstream.

Engine architecture (see ``docs/PERFORMANCE.md``):

* **Wide words** — patterns are packed ``width`` per Python int, so the
  per-gate interpreter overhead is amortised over ``width`` vectors at once.
* **Compiled cone schedules** — each fault's output cone is compiled once
  into flat arrays over a dense net-id space (opcodes, operand indices,
  local value slots); the inner loop never touches a name-keyed dict.
  Cones are extracted lazily and memoised per net, so faults on the same
  net share one cone and simulating a collapsed fault list never pays for
  cones of unfaulted nets.
* **Static fault ordering** — the active list is ordered by cone size, so
  with fault dropping the cheap (easily detected, small-cone) faults retire
  first and the expensive cones are only walked while genuinely undetected.

The multi-core fan-out lives in
:class:`repro.simulation.parallel.ParallelFaultSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro import obs
from repro.circuit.library import DEFAULT_WORD_WIDTH
from repro.obs import attribution
from repro.circuit.netlist import Circuit
from repro.simulation.faults import FaultSite, StuckAtFault, full_fault_universe
from repro.simulation.logic_sim import (
    OP_AND,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_OR,
    OP_XOR,
    LogicSimulator,
    evaluate_op,
    pack_patterns,
)

__all__ = ["ConeIndex", "FaultSimResult", "FaultSimulator"]


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    Attributes
    ----------
    faults:
        The simulated fault list (universe for the coverage denominator).
    first_detection:
        Fault -> 1-based index of the first detecting vector.  Faults absent
        from the map were never detected by the applied sequence.
    detection_counts:
        Fault -> number of detecting vectors seen while the fault was being
        simulated.  With fault dropping (the default) a fault leaves the
        active list after its first detecting *group* of packed vectors, so
        the count is a lower bound covering that horizon; with
        ``drop_detected=False`` it is exact over the whole sequence.
    n_patterns:
        Number of vectors applied.
    """

    faults: list[StuckAtFault]
    first_detection: dict[StuckAtFault, int]
    n_patterns: int = 0
    detection_counts: dict[StuckAtFault, int] = field(default_factory=dict)

    @property
    def detected(self) -> list[StuckAtFault]:
        """Faults detected at least once, in universe order."""
        return [f for f in self.faults if f in self.first_detection]

    @property
    def undetected(self) -> list[StuckAtFault]:
        """Faults never detected."""
        return [f for f in self.faults if f not in self.first_detection]

    @property
    def coverage(self) -> float:
        """Final fault coverage T = detected / total."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)

    def coverage_at(self, k: int) -> float:
        """Fault coverage after the first ``k`` vectors."""
        if not self.faults:
            return 1.0
        hits = sum(1 for idx in self.first_detection.values() if idx <= k)
        return hits / len(self.faults)

    def coverage_curve(self) -> list[tuple[int, float]]:
        """``(k, T(k))`` points at every k where coverage changed.

        Single sorted pass over the first-detection indices: O(F log F)
        rather than one O(F) ``coverage_at`` scan per change point.
        """
        if not self.faults:
            return []
        total = len(self.faults)
        counts: dict[int, int] = {}
        for idx in self.first_detection.values():
            counts[idx] = counts.get(idx, 0) + 1
        curve: list[tuple[int, float]] = []
        cumulative = 0
        for k in sorted(counts):
            cumulative += counts[k]
            curve.append((k, cumulative / total))
        return curve

    def detections_of(self, fault: StuckAtFault) -> int:
        """Number of detecting vectors recorded for ``fault`` (0 if never)."""
        return self.detection_counts.get(fault, 0)

    def detected_n_times(self, n: int) -> list[StuckAtFault]:
        """Faults with at least ``n`` recorded detections, in universe order.

        The n-detection fault set of Pomeranz & Reddy: faults a sequence
        detects many times are the ones whose surrogate coverage of
        unmodelled defects is trustworthy.
        """
        return [f for f in self.faults if self.detection_counts.get(f, 0) >= n]

    def n_detection_coverage(self, n: int) -> float:
        """Fraction of the universe detected at least ``n`` times."""
        if not self.faults:
            return 1.0
        return len(self.detected_n_times(n)) / len(self.faults)


@dataclass
class _Cone:
    """Memoised output cone of one net, over the dense net-id space."""

    gate_idx: list[int]        # compiled gate indices in topological order
    net_ids: frozenset[int]    # net ids whose value the fault can affect
    po_ids: list[int]          # primary-output ids inside the cone


class ConeIndex:
    """Lazy, memoised output-cone extraction over a compiled logic program.

    Both fault-simulation engines (the wide-word python reference and the
    numpy bitslice kernel) restrict faulty-machine work to output cones and
    order faults cheapest-cone-first; this index owns the shared pieces —
    reader adjacency over dense net ids, the per-net cone BFS memo, and the
    gate-name / driver-gate lookup tables.
    """

    def __init__(self, logic: LogicSimulator):
        self.logic = logic
        # Reader adjacency over net ids: net id -> compiled gate indices
        # reading it.  O(edges) once; cone extraction BFS runs over this.
        readers: list[list[int]] = [[] for _ in range(logic.n_nets)]
        for gi, ids in enumerate(logic.in_ids):
            for nid in ids:
                readers[nid].append(gi)
        self.readers = readers
        self.gate_index = {gate.name: i for i, gate in enumerate(logic.order)}
        self.driver_gate: dict[int, int] = {
            out: i for i, out in enumerate(logic.out_ids)
        }
        self._cones: dict[int, _Cone] = {}

    def cone(self, nid: int) -> _Cone:
        """The (memoised) compiled output cone of net id ``nid``."""
        cone = self._cones.get(nid)
        if cone is not None:
            return cone
        logic = self.logic
        readers = self.readers
        out_ids = logic.out_ids
        seen = {nid}
        gates: set[int] = set()
        stack = [nid]
        while stack:
            current = stack.pop()
            for gi in readers[current]:
                if gi not in gates:
                    gates.add(gi)
                    out = out_ids[gi]
                    if out not in seen:
                        seen.add(out)
                        stack.append(out)
        net_ids = frozenset(seen)
        cone = _Cone(
            gate_idx=sorted(gates),
            net_ids=net_ids,
            po_ids=[po for po in logic.po_ids if po in net_ids],
        )
        self._cones[nid] = cone
        return cone

    def fault_cone(self, fault: StuckAtFault) -> _Cone:
        """The output cone of ``fault``'s net."""
        return self.cone(self.logic.net_id[fault.net])


class _Program:
    """One fault's compiled resimulation schedule.

    ``refs`` entries encode operand sources: ``ref >= 0`` reads the
    fault-free value ``good[ref]``; ``ref < 0`` reads the cone-local slot
    ``local[~ref]``.  ``seeds`` pre-loads slots with forced stuck words
    before evaluation.  ``po_refs`` pairs each potentially-diverging cone
    output's local ref with its net id for the XOR against the good value.
    """

    __slots__ = ("ops", "refs", "out_slots", "po_refs", "po_ids", "n_slots", "seeds", "size")

    def __init__(self, ops, refs, out_slots, po_refs, po_ids, n_slots, seeds):
        self.ops = ops
        self.refs = refs
        self.out_slots = out_slots
        self.po_refs = po_refs
        self.po_ids = po_ids
        self.n_slots = n_slots
        self.seeds = seeds
        self.size = len(ops)


class FaultSimulator:
    """Cone-restricted, wide-word parallel-pattern stuck-at fault simulator.

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    width:
        Packed-word width (patterns simulated per word).  Results are
        bit-exact across widths; wider words trade memory per value for
        fewer interpreted passes.
    """

    #: Engine-registry kind (see :mod:`repro.simulation.engines`).
    kind = "python"

    def __init__(self, circuit: Circuit, width: int = DEFAULT_WORD_WIDTH):
        self.circuit = circuit
        self.width = width
        self.logic = LogicSimulator(circuit, width=width)
        self.mask = self.logic.mask
        self.cones = ConeIndex(self.logic)
        self._gate_index = self.cones.gate_index
        # Lazy, memoised compilation state.
        self._programs: dict[StuckAtFault, _Program] = {}
        self._multi_programs: dict[tuple[StuckAtFault, ...], _Program] = {}
        self._good_memo: tuple[Mapping[str, int], list[int]] | None = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _cone(self, nid: int) -> _Cone:
        """The (memoised) compiled output cone of net id ``nid``."""
        return self.cones.cone(nid)

    def cone_size(self, fault: StuckAtFault) -> int:
        """Number of gates resimulated per group for ``fault``."""
        return len(self._cone(self.logic.net_id[fault.net]).gate_idx)

    def _program(self, fault: StuckAtFault) -> _Program:
        """The (memoised) compiled resimulation schedule for ``fault``."""
        program = self._programs.get(fault)
        if program is not None:
            return program
        logic = self.logic
        nid = logic.net_id[fault.net]
        cone = self._cone(nid)
        stuck_word = self.mask if fault.value else 0

        if fault.site is FaultSite.NET:
            net_force = {nid: stuck_word}
            pin_force: dict[tuple[int, int], int] = {}
        else:
            net_force = {}
            pin_force = {
                (self._gate_index[fault.gate], fault.pin): stuck_word
            }
        program = self._compile(cone.gate_idx, cone.po_ids, net_force, pin_force)
        self._programs[fault] = program
        return program

    def _multi_program(self, forces: tuple[StuckAtFault, ...]) -> _Program:
        """Compiled schedule for several simultaneous stuck forces."""
        program = self._multi_programs.get(forces)
        if program is not None:
            return program
        logic = self.logic
        net_force: dict[int, int] = {}
        pin_force: dict[tuple[int, int], int] = {}
        gates: set[int] = set()
        po_ids: list[int] = []
        for fault in forces:
            stuck_word = self.mask if fault.value else 0
            nid = logic.net_id[fault.net]
            if fault.site is FaultSite.NET:
                net_force[nid] = stuck_word
            else:
                pin_force[(self._gate_index[fault.gate], fault.pin)] = stuck_word
            cone = self._cone(nid)
            gates.update(cone.gate_idx)
            for po in cone.po_ids:
                if po not in po_ids:
                    po_ids.append(po)
        program = self._compile(sorted(gates), po_ids, net_force, pin_force)
        self._multi_programs[forces] = program
        return program

    def _compile(
        self,
        gate_idx: Sequence[int],
        po_ids: Sequence[int],
        net_force: dict[int, int],
        pin_force: dict[tuple[int, int], int],
    ) -> _Program:
        """Lower a cone walk with forced values into a flat slot program.

        Gates driving a net-forced net are dropped (the force overwrites
        them); readers of a forced net read a pre-seeded constant slot.
        Readers of the cone's other nets read cone-local slots; everything
        outside the cone reads the shared fault-free value list.
        """
        logic = self.logic
        ops_all = logic.ops
        in_ids = logic.in_ids
        out_ids = logic.out_ids

        kept = [gi for gi in gate_idx if out_ids[gi] not in net_force]
        slot_of: dict[int, int] = {
            out_ids[gi]: slot for slot, gi in enumerate(kept)
        }
        n_slots = len(kept)
        seeds: list[tuple[int, int]] = []
        force_slot: dict[int, int] = {}
        for nid, word in net_force.items():
            slot = n_slots
            n_slots += 1
            seeds.append((slot, word))
            force_slot[nid] = slot
        pin_slot: dict[tuple[int, int], int] = {}
        for key, word in pin_force.items():
            slot = n_slots
            n_slots += 1
            seeds.append((slot, word))
            pin_slot[key] = slot

        ops: list[int] = []
        refs: list[tuple[int, ...]] = []
        out_slots: list[int] = []
        for gi in kept:
            gate_refs: list[int] = []
            for pin, nid in enumerate(in_ids[gi]):
                forced = pin_slot.get((gi, pin))
                if forced is not None:
                    gate_refs.append(~forced)
                elif nid in force_slot:
                    gate_refs.append(~force_slot[nid])
                elif nid in slot_of:
                    gate_refs.append(~slot_of[nid])
                else:
                    gate_refs.append(nid)
            ops.append(ops_all[gi])
            refs.append(tuple(gate_refs))
            out_slots.append(slot_of[out_ids[gi]])

        po_refs: list[tuple[int, int]] = []
        for po in po_ids:
            if po in force_slot:
                po_refs.append((~force_slot[po], po))
            elif po in slot_of:
                po_refs.append((~slot_of[po], po))
            # Otherwise the cone output keeps its fault-free value (e.g. the
            # faulted net itself under a pin fault): diff is identically 0.
        return _Program(
            ops, refs, out_slots, po_refs, list(po_ids), n_slots, tuple(seeds)
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _run_locals(self, program: _Program, good: Sequence[int]) -> list[int]:
        """Evaluate a compiled program over one good-value group."""
        local = [0] * program.n_slots
        for slot, word in program.seeds:
            local[slot] = word
        mask = self.mask
        ops = program.ops
        refs = program.refs
        out_slots = program.out_slots
        for i in range(len(ops)):
            ids = refs[i]
            if len(ids) == 2:
                r0 = ids[0]
                r1 = ids[1]
                a = good[r0] if r0 >= 0 else local[~r0]
                b = good[r1] if r1 >= 0 else local[~r1]
                op = ops[i]
                if op == OP_AND:
                    value = a & b
                elif op == OP_NAND:
                    value = mask ^ (a & b)
                elif op == OP_OR:
                    value = a | b
                elif op == OP_NOR:
                    value = mask ^ (a | b)
                elif op == OP_XOR:
                    value = a ^ b
                else:  # OP_XNOR
                    value = mask ^ a ^ b
            elif len(ids) == 1:
                r0 = ids[0]
                a = good[r0] if r0 >= 0 else local[~r0]
                value = a if ops[i] == OP_BUF else mask ^ a
            else:
                value = evaluate_op(
                    ops[i],
                    [good[r] if r >= 0 else local[~r] for r in ids],
                    mask,
                )
            local[out_slots[i]] = value
        return local

    def _detect(self, program: _Program, good: Sequence[int]) -> int:
        """Detection word (diff over cone outputs) for one compiled program."""
        local = self._run_locals(program, good)
        diff = 0
        for ref, po in program.po_refs:
            diff |= local[~ref] ^ good[po]
        return diff

    def _good_list(
        self, good_values: Mapping[str, int] | Sequence[int]
    ) -> Sequence[int]:
        """Accept packed good values as a name dict or a net-id list.

        Dict conversions are memoised on the last-seen dict identity, so the
        usual caller pattern — many faults against one group — converts once.
        """
        if isinstance(good_values, dict):
            memo = self._good_memo
            if memo is not None and memo[0] is good_values:
                return memo[1]
            values = [good_values[name] for name in self.logic.net_names]
            self._good_memo = (good_values, values)
            return values
        return good_values

    # ------------------------------------------------------------------
    def detection_word(
        self,
        fault: StuckAtFault,
        good_values: Mapping[str, int] | Sequence[int],
    ) -> int:
        """Bit mask of patterns (within one packed group) that detect ``fault``.

        ``good_values`` is the fault-free packed simulation of the group —
        either the name-keyed dict from :meth:`LogicSimulator.simulate_packed`
        or the dense net-id list from
        :meth:`LogicSimulator.simulate_packed_list`.
        """
        good = self._good_list(good_values)
        return self._detect(self._program(fault), good)

    # ------------------------------------------------------------------
    def detection_word_multi(
        self,
        forces: Sequence[StuckAtFault],
        good_values: Mapping[str, int] | Sequence[int],
    ) -> int:
        """Detection mask for several simultaneous stuck forces.

        Used by the switch-level simulator's fast paths (an open that floats
        several gate-input pins behaves, under one charge assumption, like a
        multiple stuck-at fault).  The forced cone is the union of the
        individual cones; compiled schedules are memoised per force tuple.
        """
        if not forces:
            return 0
        good = self._good_list(good_values)
        return self._detect(self._multi_program(tuple(forces)), good)

    # ------------------------------------------------------------------
    def po_diff_words(
        self,
        fault: StuckAtFault,
        good_values: Mapping[str, int] | Sequence[int],
    ) -> dict[str, int]:
        """Per-primary-output difference words (the per-PO refinement of
        :meth:`detection_word`), keyed by output net name.

        Every primary output inside the fault's cone appears in the result;
        outputs the fault cannot reach are omitted.
        """
        good = self._good_list(good_values)
        program = self._program(fault)
        local = self._run_locals(program, good)
        diffs = {ref_po: local[~ref] ^ good[ref_po] for ref, ref_po in program.po_refs}
        names = self.logic.net_names
        return {names[po]: diffs.get(po, 0) for po in program.po_ids}

    # ------------------------------------------------------------------
    def pack(self, patterns: Sequence[Sequence[int]]) -> list[list[int]]:
        """Pack ``patterns`` into this engine's native packed-group form.

        Part of the engine protocol (see :mod:`repro.simulation.engines`):
        the parallel fan-out packs once per worker and replays fault chunks
        against the packed form via :meth:`run_packed`.
        """
        return pack_patterns(
            patterns, len(self.circuit.primary_inputs), self.width
        )

    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns`` against ``faults`` (default: universe).

        With ``drop_detected`` (the default), a fault is removed from the
        active list after its first detection; first-detection indices are
        recorded either way.
        """
        groups = self.pack(patterns)
        return self.run_packed(groups, len(patterns), faults, drop_detected)

    def run_packed(
        self,
        groups: Sequence[Sequence[int]],
        n_patterns: int,
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate pre-packed pattern groups (packed at this width).

        The multi-core fan-out packs once and re-runs chunks of the fault
        list against the same groups; see
        :class:`repro.simulation.parallel.ParallelFaultSimulator`.
        """
        if faults is None:
            faults = full_fault_universe(self.circuit)
        first_detection, detection_counts = self._simulate_groups(
            groups, n_patterns, faults, drop_detected
        )
        obs.set_gauge("fault_sim.word_width", self.width)
        obs.inc("fault_sim.patterns_applied", n_patterns)
        obs.inc("fault_sim.faults_simulated", len(faults))
        if drop_detected:
            obs.inc("fault_sim.faults_dropped", len(first_detection))
        obs.inc("fault_sim.detections", sum(detection_counts.values()))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=n_patterns,
            detection_counts=detection_counts,
        )

    def _simulate_groups(
        self,
        groups: Sequence[Sequence[int]],
        n_patterns: int,
        faults: list[StuckAtFault],
        drop_detected: bool,
    ) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
        """The simulation core: span + group loop, **no counter updates**.

        :meth:`run_packed` layers the ``fault_sim.*`` counters on top.  The
        parallel engine's serial-salvage path calls this directly and
        accounts for its chunks itself — counters are owned either by one
        serial run or by the supervising parent, never both, so merged
        parallel profiles match serial runs without double counting.
        """
        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        width = self.width
        emit_progress = obs.events_enabled()
        with obs.span(
            "fault_sim.run",
            n_patterns=n_patterns,
            n_faults=len(faults),
            word_width=width,
        ):
            # Static order: cheap cones first, so with dropping the bulk of
            # the (easily detected) universe retires before the big cones.
            work = sorted(
                ((fault, self._program(fault)) for fault in faults),
                key=lambda pair: pair[1].size,
            )
            detect = self._detect
            # Cost attribution (None when disabled).  Running sums keep the
            # per-group accounting O(1): the active gate-eval mass per cone
            # bucket is maintained incrementally as faults drop, never
            # recomputed by walking the fault list.
            attr = attribution.collector()
            if attr is not None:
                n_buckets = attribution.N_CONE_BUCKETS
                bucket_active = [0] * n_buckets
                bucket_evals = [0] * n_buckets
                bucket_faults = [0] * n_buckets
                active_evals = 0
                for _, program in work:
                    bucket = attribution.cone_bucket_index(program.size)
                    bucket_active[bucket] += program.size
                    bucket_faults[bucket] += 1
                    active_evals += program.size
                good_size = len(self.logic.order)
                gate_evals = good_gate_evals = 0
                pattern_blocks = pattern_bytes = 0
                block_drops: dict[int, int] = {}
            for group_index, words in enumerate(groups):
                if not work:
                    break
                base = group_index * width
                n_here = min(width, n_patterns - base)
                group_mask = (1 << n_here) - 1
                if attr is not None:
                    gate_evals += active_evals
                    good_gate_evals += good_size
                    pattern_blocks += 1
                    pattern_bytes += len(words) * width // 8
                    for bucket in range(n_buckets):
                        bucket_evals[bucket] += bucket_active[bucket]
                good = self.logic.simulate_packed_list(words)
                survivors: list[tuple[StuckAtFault, _Program]] = []
                for pair in work:
                    fault, program = pair
                    diff = detect(program, good) & group_mask
                    if diff:
                        first = base + _lowest_set_bit(diff) + 1
                        if (
                            fault not in first_detection
                            or first < first_detection[fault]
                        ):
                            first_detection[fault] = first
                        detection_counts[fault] = (
                            detection_counts.get(fault, 0) + diff.bit_count()
                        )
                        if not drop_detected:
                            survivors.append(pair)
                        elif attr is not None:
                            bucket = attribution.cone_bucket_index(
                                program.size
                            )
                            bucket_active[bucket] -= program.size
                            active_evals -= program.size
                            block_drops[group_index] = (
                                block_drops.get(group_index, 0) + 1
                            )
                    else:
                        survivors.append(pair)
                work = survivors
                if emit_progress and faults:
                    obs.emit(
                        obs.ProgressEvent(
                            stage="fault_sim",
                            completed=base + n_here,
                            total=n_patterns,
                            unit="patterns",
                            data={
                                "faults_remaining": len(work),
                                "detection_rate": len(first_detection)
                                / len(faults),
                            },
                        )
                    )
            if attr is not None:
                attr.add("stage.fault_sim.gate_evals", gate_evals)
                attr.add("stage.fault_sim.good_gate_evals", good_gate_evals)
                attr.add(
                    "stage.fault_sim.words_simulated",
                    gate_evals + good_gate_evals,
                )
                attr.add("stage.fault_sim.pattern_blocks", pattern_blocks)
                attr.add("stage.fault_sim.pattern_bytes", pattern_bytes)
                for bucket in range(n_buckets):
                    if bucket_faults[bucket]:
                        label = attribution.cone_bucket_label(bucket)
                        attr.add(f"cone.{label}.faults", bucket_faults[bucket])
                        attr.add(
                            f"cone.{label}.gate_evals", bucket_evals[bucket]
                        )
                for block, drops in block_drops.items():
                    attr.add(f"block.{block:04d}.faults_dropped", drops)
        return first_detection, detection_counts

    # ------------------------------------------------------------------
    def detects(self, fault: StuckAtFault, pattern: Sequence[int]) -> bool:
        """True when a single vector detects the fault at any primary output."""
        return self.first_detecting(fault, [pattern]) is not None

    def detects_any(
        self, fault: StuckAtFault, patterns: Sequence[Sequence[int]]
    ) -> bool:
        """True when any of ``patterns`` detects ``fault``.

        Batched: the whole sequence is packed once and simulated group by
        group, unlike a ``detects`` call per vector which repacks and
        resimulates the fault-free circuit every time.
        """
        return self.first_detecting(fault, patterns) is not None

    def first_detecting(
        self, fault: StuckAtFault, patterns: Sequence[Sequence[int]]
    ) -> int | None:
        """1-based index of the first vector detecting ``fault``, or None."""
        n_patterns = len(patterns)
        width = self.width
        groups = pack_patterns(
            patterns, len(self.circuit.primary_inputs), width
        )
        program = self._program(fault)
        for group_index, words in enumerate(groups):
            base = group_index * width
            n_here = min(width, n_patterns - base)
            good = self.logic.simulate_packed_list(words)
            diff = self._detect(program, good) & ((1 << n_here) - 1)
            if diff:
                return base + _lowest_set_bit(diff) + 1
        return None


def _lowest_set_bit(word: int) -> int:
    return (word & -word).bit_length() - 1
