"""Parallel-pattern single stuck-at fault simulation.

For every fault the simulator re-evaluates only the fault's output cone with
the faulty value forced, 64 patterns at a time, and compares primary outputs
against the fault-free simulation.  Detected faults are dropped from further
simulation.  The result records each fault's *first-detection index*, which is
exactly what the paper's ``T(k)`` coverage-growth curves are built from, plus
its *detection count* over the simulated horizon — the per-fault n-detection
telemetry that Pomeranz-&-Reddy-style analyses consume downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.circuit.levelize import levelize, output_cone
from repro.circuit.library import ALL_ONES_64, evaluate_gate_packed
from repro.circuit.netlist import Circuit, Gate
from repro.simulation.faults import FaultSite, StuckAtFault, full_fault_universe
from repro.simulation.logic_sim import LogicSimulator, pack_patterns

__all__ = ["FaultSimResult", "FaultSimulator"]


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run.

    Attributes
    ----------
    faults:
        The simulated fault list (universe for the coverage denominator).
    first_detection:
        Fault -> 1-based index of the first detecting vector.  Faults absent
        from the map were never detected by the applied sequence.
    detection_counts:
        Fault -> number of detecting vectors seen while the fault was being
        simulated.  With fault dropping (the default) a fault leaves the
        active list after its first detecting *group* of 64 vectors, so the
        count is a lower bound covering that horizon; with
        ``drop_detected=False`` it is exact over the whole sequence.
    n_patterns:
        Number of vectors applied.
    """

    faults: list[StuckAtFault]
    first_detection: dict[StuckAtFault, int]
    n_patterns: int = 0
    detection_counts: dict[StuckAtFault, int] = field(default_factory=dict)

    @property
    def detected(self) -> list[StuckAtFault]:
        """Faults detected at least once, in universe order."""
        return [f for f in self.faults if f in self.first_detection]

    @property
    def undetected(self) -> list[StuckAtFault]:
        """Faults never detected."""
        return [f for f in self.faults if f not in self.first_detection]

    @property
    def coverage(self) -> float:
        """Final fault coverage T = detected / total."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)

    def coverage_at(self, k: int) -> float:
        """Fault coverage after the first ``k`` vectors."""
        if not self.faults:
            return 1.0
        hits = sum(1 for idx in self.first_detection.values() if idx <= k)
        return hits / len(self.faults)

    def coverage_curve(self) -> list[tuple[int, float]]:
        """``(k, T(k))`` points at every k where coverage changed."""
        ks = sorted(set(self.first_detection.values()))
        return [(k, self.coverage_at(k)) for k in ks]

    def detections_of(self, fault: StuckAtFault) -> int:
        """Number of detecting vectors recorded for ``fault`` (0 if never)."""
        return self.detection_counts.get(fault, 0)

    def detected_n_times(self, n: int) -> list[StuckAtFault]:
        """Faults with at least ``n`` recorded detections, in universe order.

        The n-detection fault set of Pomeranz & Reddy: faults a sequence
        detects many times are the ones whose surrogate coverage of
        unmodelled defects is trustworthy.
        """
        return [f for f in self.faults if self.detection_counts.get(f, 0) >= n]

    def n_detection_coverage(self, n: int) -> float:
        """Fraction of the universe detected at least ``n`` times."""
        if not self.faults:
            return 1.0
        return len(self.detected_n_times(n)) / len(self.faults)


@dataclass
class _ConeInfo:
    gates: list[Gate] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)


class FaultSimulator:
    """Cone-restricted, parallel-pattern stuck-at fault simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.logic = LogicSimulator(circuit)
        self._order = levelize(circuit)
        self._cones: dict[str, _ConeInfo] = {}
        po_set = set(circuit.primary_outputs)
        for net in circuit.nets:
            cone_nets = output_cone(circuit, net)
            info = _ConeInfo(
                gates=[g for g in self._order if g.output in cone_nets],
                outputs=[po for po in circuit.primary_outputs if po in cone_nets],
            )
            # The faulty net may itself be observable.
            if net in po_set and net not in info.outputs:
                info.outputs.append(net)
            self._cones[net] = info

    # ------------------------------------------------------------------
    def detection_word(
        self,
        fault: StuckAtFault,
        good_values: dict[str, int],
    ) -> int:
        """Bit mask of patterns (within one packed group) that detect ``fault``.

        ``good_values`` is the fault-free packed simulation of the group, as
        produced by :meth:`LogicSimulator.simulate_packed`.
        """
        stuck_word = ALL_ONES_64 if fault.value else 0
        cone = self._cones[fault.net]
        faulty: dict[str, int] = {}

        if fault.site is FaultSite.NET:
            faulty[fault.net] = stuck_word
        # For pin faults the net itself keeps its good value; only the
        # specific gate sees the stuck operand (handled below).

        diff = 0
        for gate in cone.gates:
            operands = []
            for pin, net in enumerate(gate.inputs):
                if (
                    fault.site is FaultSite.GATE_INPUT
                    and gate.name == fault.gate
                    and pin == fault.pin
                ):
                    operands.append(stuck_word)
                else:
                    operands.append(faulty.get(net, good_values[net]))
            value = evaluate_gate_packed(gate.gate_type, operands, ALL_ONES_64)
            if fault.site is FaultSite.NET and gate.output == fault.net:
                value = stuck_word
            faulty[gate.output] = value

        for po in cone.outputs:
            diff |= faulty.get(po, good_values[po]) ^ good_values[po]
        return diff & ALL_ONES_64

    # ------------------------------------------------------------------
    def detection_word_multi(
        self,
        forces: Sequence[StuckAtFault],
        good_values: dict[str, int],
    ) -> int:
        """Detection mask for several simultaneous stuck forces.

        Used by the switch-level simulator's fast paths (an open that floats
        several gate-input pins behaves, under one charge assumption, like a
        multiple stuck-at fault).  The forced cone is the union of the
        individual cones.
        """
        if not forces:
            return 0
        net_force: dict[str, int] = {}
        pin_force: dict[tuple[str, int], int] = {}
        cone_nets: set[str] = set()
        outputs: list[str] = []
        for fault in forces:
            stuck_word = ALL_ONES_64 if fault.value else 0
            if fault.site is FaultSite.NET:
                net_force[fault.net] = stuck_word
            else:
                pin_force[(fault.gate, fault.pin)] = stuck_word
            info = self._cones[fault.net]
            cone_nets.update(g.output for g in info.gates)
            cone_nets.add(fault.net)
            outputs.extend(po for po in info.outputs if po not in outputs)

        faulty: dict[str, int] = dict(net_force)
        for gate in self._order:
            if gate.output not in cone_nets:
                continue
            operands = []
            for pin, net in enumerate(gate.inputs):
                forced = pin_force.get((gate.name, pin))
                if forced is not None:
                    operands.append(forced)
                else:
                    operands.append(faulty.get(net, good_values[net]))
            value = evaluate_gate_packed(gate.gate_type, operands, ALL_ONES_64)
            if gate.output in net_force:
                value = net_force[gate.output]
            faulty[gate.output] = value

        diff = 0
        for po in outputs:
            diff |= faulty.get(po, good_values[po]) ^ good_values[po]
        return diff & ALL_ONES_64

    # ------------------------------------------------------------------
    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns`` against ``faults`` (default: universe).

        With ``drop_detected`` (the default), a fault is removed from the
        active list after its first detection; first-detection indices are
        recorded either way.
        """
        if faults is None:
            faults = full_fault_universe(self.circuit)
        n_inputs = len(self.circuit.primary_inputs)
        groups = pack_patterns(patterns, n_inputs)

        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        active = list(faults)
        with obs.span(
            "fault_sim.run", n_patterns=len(patterns), n_faults=len(faults)
        ):
            for group_index, words in enumerate(groups):
                if not active:
                    break
                base = group_index * 64
                n_here = min(64, len(patterns) - base)
                group_mask = (1 << n_here) - 1
                good = self.logic.simulate_packed(words)
                survivors: list[StuckAtFault] = []
                for fault in active:
                    diff = self.detection_word(fault, good) & group_mask
                    if diff:
                        first = base + _lowest_set_bit(diff) + 1
                        if fault not in first_detection or first < first_detection[fault]:
                            first_detection[fault] = first
                        detection_counts[fault] = (
                            detection_counts.get(fault, 0) + diff.bit_count()
                        )
                        if not drop_detected:
                            survivors.append(fault)
                    else:
                        survivors.append(fault)
                active = survivors

        obs.inc("fault_sim.patterns_applied", len(patterns))
        obs.inc("fault_sim.faults_simulated", len(faults))
        if drop_detected:
            obs.inc("fault_sim.faults_dropped", len(first_detection))
        obs.inc("fault_sim.detections", sum(detection_counts.values()))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=len(patterns),
            detection_counts=detection_counts,
        )

    def detects(self, fault: StuckAtFault, pattern: Sequence[int]) -> bool:
        """True when a single vector detects the fault at any primary output."""
        words = pack_patterns([list(pattern)], len(self.circuit.primary_inputs))[0]
        good = self.logic.simulate_packed(words)
        return bool(self.detection_word(fault, good) & 1)


def _lowest_set_bit(word: int) -> int:
    return (word & -word).bit_length() - 1
