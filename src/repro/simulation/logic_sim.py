"""Parallel-pattern gate-level logic simulation.

Patterns are packed ``W`` per word (Python ints used as bit vectors, default
``W = 256``), so one pass over the levelized gate list evaluates a whole
group of input vectors at once — the standard trick used by production fault
simulators, and the reason the paper's per-vector coverage curves are cheap
to regenerate.  Because Python ints are arbitrary precision, the word width
is a tuning knob rather than a machine constant; wider words amortise the
per-gate interpreter overhead over more patterns (see
``docs/PERFORMANCE.md``).

The simulator compiles the circuit once into a dense net-id program: nets
are numbered (primary inputs first, then gate outputs in topological order)
and simulation runs over a flat value list indexed by net id instead of a
dict keyed by name.  The fault simulator reuses the same compiled arrays for
its cone-restricted resimulation.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuit.levelize import levelize
from repro.circuit.library import DEFAULT_WORD_WIDTH, GateType, all_ones
from repro.circuit.netlist import Circuit, Gate

__all__ = ["LogicSimulator", "pack_patterns", "unpack_word"]

# Compiled opcode per gate type (dispatch on small ints in the hot loop).
OP_AND, OP_NAND, OP_OR, OP_NOR, OP_XOR, OP_XNOR, OP_NOT, OP_BUF = range(8)

GATE_OPCODE: dict[GateType, int] = {
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.NOT: OP_NOT,
    GateType.BUF: OP_BUF,
}

#: Opcodes whose result is the mask-complement of the non-inverting core.
_INVERTING_OPS = frozenset({OP_NAND, OP_NOR, OP_XNOR, OP_NOT})


def pack_patterns(
    patterns: Sequence[Sequence[int]],
    n_inputs: int,
    width: int = DEFAULT_WORD_WIDTH,
) -> list[list[int]]:
    """Pack up-to-``width``-pattern groups into words, one word list per group.

    Parameters
    ----------
    patterns:
        Sequence of input vectors; each vector has one 0/1 entry per PI.
    n_inputs:
        Number of primary inputs (vector length check).
    width:
        Patterns per packed word (the simulation word width).

    Returns
    -------
    list of word groups; each group is a list with one packed int per PI,
    where bit ``p`` of word ``i`` is pattern ``p``'s value for input ``i``.
    """
    if width < 1:
        raise ValueError(f"word width must be positive, got {width}")
    groups: list[list[int]] = []
    for start in range(0, len(patterns), width):
        chunk = patterns[start : start + width]
        words = [0] * n_inputs
        for bit, vector in enumerate(chunk):
            if len(vector) != n_inputs:
                raise ValueError(
                    f"pattern {start + bit} has {len(vector)} values, "
                    f"expected {n_inputs}"
                )
            for i, value in enumerate(vector):
                if value:
                    words[i] |= 1 << bit
        groups.append(words)
    return groups


def unpack_word(word: int, n_patterns: int) -> list[int]:
    """Expand a packed word back into per-pattern 0/1 values."""
    return [(word >> bit) & 1 for bit in range(n_patterns)]


def evaluate_op(op: int, operands: Sequence[int], mask: int) -> int:
    """Evaluate one compiled opcode over packed operand words.

    All operand words must be subsets of ``mask``, which the simulators
    guarantee by construction; inverting ops then reduce to a single XOR.
    """
    if op == OP_AND:
        value = operands[0]
        for word in operands[1:]:
            value &= word
        return value
    if op == OP_NAND:
        value = operands[0]
        for word in operands[1:]:
            value &= word
        return mask ^ value
    if op == OP_OR:
        value = operands[0]
        for word in operands[1:]:
            value |= word
        return value
    if op == OP_NOR:
        value = operands[0]
        for word in operands[1:]:
            value |= word
        return mask ^ value
    if op == OP_XOR:
        value = operands[0]
        for word in operands[1:]:
            value ^= word
        return value
    if op == OP_XNOR:
        value = operands[0]
        for word in operands[1:]:
            value ^= word
        return mask ^ value
    if op == OP_NOT:
        return mask ^ operands[0]
    if op == OP_BUF:
        return operands[0]
    raise ValueError(f"unknown opcode {op}")


class LogicSimulator:
    """Levelized, wide-word parallel-pattern logic simulator.

    The simulator is constructed once per circuit; the compiled net-id
    program (level order, opcodes, dense operand indices) is cached so
    repeated simulation (the fault simulator calls this in its inner loop)
    pays no graph-traversal or name-lookup cost.

    Parameters
    ----------
    circuit:
        The combinational circuit to simulate.
    width:
        Patterns per packed word.  All packed words handed to
        :meth:`simulate_packed` must have been packed at this width.
    """

    def __init__(self, circuit: Circuit, width: int = DEFAULT_WORD_WIDTH):
        circuit.validate()
        self.circuit = circuit
        self.width = width
        self.mask = all_ones(width)
        self.order: list[Gate] = levelize(circuit)
        self._n_inputs = len(circuit.primary_inputs)

        # Dense net-id space: primary inputs first (id == PI position), then
        # gate outputs in topological order.
        net_id: dict[str, int] = {
            pi: i for i, pi in enumerate(circuit.primary_inputs)
        }
        for gate in self.order:
            if gate.output not in net_id:
                net_id[gate.output] = len(net_id)
        self.net_id = net_id
        self.net_names: list[str] = [""] * len(net_id)
        for name, nid in net_id.items():
            self.net_names[nid] = name
        self.n_nets = len(net_id)
        self.po_ids: list[int] = [net_id[po] for po in circuit.primary_outputs]

        # Compiled program: one (opcode, output id, operand-id tuple) per
        # gate in topological order.
        self.ops: list[int] = []
        self.out_ids: list[int] = []
        self.in_ids: list[tuple[int, ...]] = []
        for gate in self.order:
            self.ops.append(GATE_OPCODE[gate.gate_type])
            self.out_ids.append(net_id[gate.output])
            self.in_ids.append(tuple(net_id[n] for n in gate.inputs))

    def simulate_packed_list(self, input_words: Sequence[int]) -> list[int]:
        """Simulate one packed word group; return values indexed by net id.

        ``input_words`` carries one word per primary input, in PI order; the
        returned list is indexed by the dense net id (:attr:`net_id`).
        """
        if len(input_words) != self._n_inputs:
            raise ValueError(
                f"expected {self._n_inputs} input words, got {len(input_words)}"
            )
        mask = self.mask
        values = [0] * self.n_nets
        values[: self._n_inputs] = input_words
        in_ids = self.in_ids
        out_ids = self.out_ids
        for i, op in enumerate(self.ops):
            ids = in_ids[i]
            if len(ids) == 2:
                a = values[ids[0]]
                b = values[ids[1]]
                if op == OP_AND:
                    value = a & b
                elif op == OP_NAND:
                    value = mask ^ (a & b)
                elif op == OP_OR:
                    value = a | b
                elif op == OP_NOR:
                    value = mask ^ (a | b)
                elif op == OP_XOR:
                    value = a ^ b
                else:  # OP_XNOR (2-input NOT/BUF cannot occur)
                    value = mask ^ a ^ b
            elif len(ids) == 1:
                value = values[ids[0]] if op == OP_BUF else mask ^ values[ids[0]]
            else:
                value = evaluate_op(op, [values[j] for j in ids], mask)
            values[out_ids[i]] = value
        return values

    def simulate_packed(self, input_words: Sequence[int]) -> dict[str, int]:
        """Simulate one packed word group; return net name -> packed values.

        ``input_words`` carries one word per primary input, in PI order.
        """
        return dict(zip(self.net_names, self.simulate_packed_list(input_words)))

    def simulate(self, pattern: Sequence[int]) -> dict[str, int]:
        """Simulate a single input vector; return net name -> 0/1."""
        words = pack_patterns([list(pattern)], self._n_inputs, self.width)[0]
        values = self.simulate_packed_list(words)
        return {
            name: values[nid] & 1 for name, nid in self.net_id.items()
        }

    def outputs(self, pattern: Sequence[int]) -> list[int]:
        """Primary output values for one input vector, in PO order."""
        words = pack_patterns([list(pattern)], self._n_inputs, self.width)[0]
        values = self.simulate_packed_list(words)
        return [values[po] & 1 for po in self.po_ids]

    def output_words(self, input_words: Sequence[int]) -> list[int]:
        """Packed primary output words for one packed word group."""
        values = self.simulate_packed_list(input_words)
        return [values[po] for po in self.po_ids]

    def run_patterns(
        self, patterns: Sequence[Sequence[int]]
    ) -> list[list[int]]:
        """Simulate many vectors; return a PO-value row per vector."""
        results: list[list[int]] = []
        width = self.width
        for start, words in enumerate(
            pack_patterns(patterns, self._n_inputs, width)
        ):
            n_here = min(width, len(patterns) - start * width)
            out_words = self.output_words(words)
            for bit in range(n_here):
                results.append([(w >> bit) & 1 for w in out_words])
        return results

    def truth_table(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Exhaustive truth table; only sensible for small input counts."""
        if self._n_inputs > 20:
            raise ValueError("truth table limited to 20 inputs")
        rows = []
        for code in range(2**self._n_inputs):
            vec = [(code >> i) & 1 for i in range(self._n_inputs)]
            rows.append((tuple(vec), tuple(self.outputs(vec))))
        return rows


def patterns_from_ints(codes: Iterable[int], n_inputs: int) -> list[list[int]]:
    """Convert integer codes to input vectors (bit ``i`` drives PI ``i``)."""
    return [[(code >> i) & 1 for i in range(n_inputs)] for code in codes]
