"""Parallel-pattern gate-level logic simulation.

Patterns are packed 64 per machine word (Python ints used as bit vectors), so
one pass over the levelized gate list evaluates 64 input vectors at once —
the standard trick used by production fault simulators, and the reason the
paper's per-vector coverage curves are cheap to regenerate.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.circuit.levelize import levelize
from repro.circuit.library import ALL_ONES_64, evaluate_gate_packed
from repro.circuit.netlist import Circuit, Gate

__all__ = ["LogicSimulator", "pack_patterns", "unpack_word"]


def pack_patterns(patterns: Sequence[Sequence[int]], n_inputs: int) -> list[list[int]]:
    """Pack up to-64-pattern groups into words, one word list per group.

    Parameters
    ----------
    patterns:
        Sequence of input vectors; each vector has one 0/1 entry per PI.
    n_inputs:
        Number of primary inputs (vector length check).

    Returns
    -------
    list of word groups; each group is a list with one packed int per PI,
    where bit ``p`` of word ``i`` is pattern ``p``'s value for input ``i``.
    """
    groups: list[list[int]] = []
    for start in range(0, len(patterns), 64):
        chunk = patterns[start : start + 64]
        words = [0] * n_inputs
        for bit, vector in enumerate(chunk):
            if len(vector) != n_inputs:
                raise ValueError(
                    f"pattern {start + bit} has {len(vector)} values, "
                    f"expected {n_inputs}"
                )
            for i, value in enumerate(vector):
                if value:
                    words[i] |= 1 << bit
        groups.append(words)
    return groups


def unpack_word(word: int, n_patterns: int) -> list[int]:
    """Expand a packed word back into per-pattern 0/1 values."""
    return [(word >> bit) & 1 for bit in range(n_patterns)]


class LogicSimulator:
    """Levelized, 64-way parallel-pattern logic simulator.

    The simulator is constructed once per circuit; level order and fanout are
    cached so repeated simulation (the fault simulator calls this in its inner
    loop) pays no graph-traversal cost.
    """

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self.order: list[Gate] = levelize(circuit)
        self._n_inputs = len(circuit.primary_inputs)

    def simulate_packed(self, input_words: Sequence[int]) -> dict[str, int]:
        """Simulate one packed word group; return net name -> packed values.

        ``input_words`` carries one word per primary input, in PI order.
        """
        if len(input_words) != self._n_inputs:
            raise ValueError(
                f"expected {self._n_inputs} input words, got {len(input_words)}"
            )
        values: dict[str, int] = dict(
            zip(self.circuit.primary_inputs, input_words)
        )
        for gate in self.order:
            operands = [values[net] for net in gate.inputs]
            values[gate.output] = evaluate_gate_packed(
                gate.gate_type, operands, ALL_ONES_64
            )
        return values

    def simulate(self, pattern: Sequence[int]) -> dict[str, int]:
        """Simulate a single input vector; return net name -> 0/1."""
        words = pack_patterns([list(pattern)], self._n_inputs)[0]
        packed = self.simulate_packed(words)
        return {net: value & 1 for net, value in packed.items()}

    def outputs(self, pattern: Sequence[int]) -> list[int]:
        """Primary output values for one input vector, in PO order."""
        values = self.simulate(pattern)
        return [values[po] for po in self.circuit.primary_outputs]

    def output_words(self, input_words: Sequence[int]) -> list[int]:
        """Packed primary output words for one packed word group."""
        values = self.simulate_packed(input_words)
        return [values[po] for po in self.circuit.primary_outputs]

    def run_patterns(
        self, patterns: Sequence[Sequence[int]]
    ) -> list[list[int]]:
        """Simulate many vectors; return a PO-value row per vector."""
        results: list[list[int]] = []
        for start, words in enumerate(pack_patterns(patterns, self._n_inputs)):
            n_here = min(64, len(patterns) - start * 64)
            out_words = self.output_words(words)
            for bit in range(n_here):
                results.append([(w >> bit) & 1 for w in out_words])
        return results

    def truth_table(self) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Exhaustive truth table; only sensible for small input counts."""
        if self._n_inputs > 20:
            raise ValueError("truth table limited to 20 inputs")
        rows = []
        for code in range(2**self._n_inputs):
            vec = [(code >> i) & 1 for i in range(self._n_inputs)]
            rows.append((tuple(vec), tuple(self.outputs(vec))))
        return rows


def patterns_from_ints(codes: Iterable[int], n_inputs: int) -> list[list[int]]:
    """Convert integer codes to input vectors (bit ``i`` drives PI ``i``)."""
    return [[(code >> i) & 1 for i in range(n_inputs)] for code in codes]
