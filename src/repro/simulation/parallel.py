"""Multi-core fault-simulation fan-out with supervised recovery.

:class:`ParallelFaultSimulator` partitions the fault list across a
``concurrent.futures.ProcessPoolExecutor``.  Each worker builds the compiled
engine once and receives the packed pattern groups once, through the pool
initializer; per-task traffic is just a fault sublist out and two small
result maps back.  Per-fault outcomes are independent (dropping one fault
never changes another fault's detections), so any partition of the fault
list reproduces the serial engine bit-exactly — the property tests in
``tests/test_wide_word.py`` and ``tests/test_parallel_resilience.py``
assert it, including under injected failures.

Supervision (see ``docs/RESILIENCE.md``): chunks run as individual futures
with an optional deadline.  A failed or timed-out chunk is classified
through :func:`repro.resilience.classify_failure` — transient failures
(worker crash, timeout, OS resource errors) are retried in a fresh pool
with deterministic backoff, then re-run serially in the parent; fatal
failures (deterministic bugs) skip pool retries and go straight to the
serial phase, where the real exception propagates with full context.
Chunks that completed are *salvaged* — never recomputed, never discarded.
Degradation is never silent: it warns, increments the
``resilience.chunk_retries`` / ``resilience.chunks_salvaged`` /
``resilience.degraded_runs`` counters, and names the reason in
:meth:`ParallelFaultSimulator.engine_info` (and hence the run manifest).

The fan-out also degrades gracefully by *choice*: below a work crossover
(``n_faults x n_patterns``) or with one worker the serial
:class:`~repro.simulation.fault_sim.FaultSimulator` runs in-process instead.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import Callable, Sequence

from repro import obs
from repro.circuit.library import DEFAULT_WORD_WIDTH
from repro.circuit.netlist import Circuit
from repro.resilience import chaos
from repro.resilience.errors import ChunkFailure, FailureKind, classify_failure
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.simulation.fault_sim import FaultSimResult, FaultSimulator
from repro.simulation.faults import StuckAtFault, full_fault_universe
from repro.simulation.logic_sim import pack_patterns

__all__ = ["ParallelFaultSimulator", "DEFAULT_CROSSOVER"]

#: Below this many fault x pattern evaluations the pool start-up and pickling
#: overhead outweighs the fan-out; the serial engine runs instead.
DEFAULT_CROSSOVER = 2_000_000

# Worker-process state, installed once per worker by _init_worker.
_WORKER_SIM: FaultSimulator | None = None
_WORKER_GROUPS: list[list[int]] | None = None
_WORKER_N_PATTERNS: int = 0


def _init_worker(
    circuit: Circuit,
    width: int,
    patterns: list[list[int]],
    plan: chaos.ChaosPlan | None = None,
) -> None:
    """Pool initializer: compile the engine and pack the patterns once."""
    global _WORKER_SIM, _WORKER_GROUPS, _WORKER_N_PATTERNS
    chaos.install(plan)
    _WORKER_SIM = FaultSimulator(circuit, width=width)
    _WORKER_GROUPS = pack_patterns(
        patterns, len(circuit.primary_inputs), width
    )
    _WORKER_N_PATTERNS = len(patterns)


def _simulate_chunk(
    faults: list[StuckAtFault],
    drop_detected: bool,
    chunk_id: int = 0,
    attempt: int = 0,
) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
    """Simulate one fault chunk against the worker's packed groups."""
    assert _WORKER_SIM is not None and _WORKER_GROUPS is not None
    chaos.maybe_inject("parallel.chunk", key=chunk_id, attempt=attempt)
    result = _WORKER_SIM.run_packed(
        _WORKER_GROUPS, _WORKER_N_PATTERNS, faults, drop_detected
    )
    return result.first_detection, result.detection_counts


class ParallelFaultSimulator:
    """Fault simulator that fans the fault list out over worker processes.

    Drop-in compatible with :class:`FaultSimulator.run`; results are
    bit-exact with the serial engine for both drop modes, in every recovery
    path.

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    width:
        Packed-word width forwarded to every worker's engine.
    max_workers:
        Worker process count; defaults to the machine's CPU count.
    crossover:
        Minimum ``n_faults * n_patterns`` before the pool is worth starting;
        smaller jobs run serially in-process.
    retry:
        Bounded-retry policy for transient chunk failures (default:
        :data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY` — one fresh-pool
        retry with deterministic backoff, then serial salvage).
    chunk_timeout:
        Deadline in seconds for a round of chunks; chunks not finished by
        then are treated as transient failures (the hung pool is abandoned).
        None (default) disables the deadline.
    """

    def __init__(
        self,
        circuit: Circuit,
        width: int = DEFAULT_WORD_WIDTH,
        max_workers: int | None = None,
        crossover: int = DEFAULT_CROSSOVER,
        retry: RetryPolicy | None = None,
        chunk_timeout: float | None = None,
    ):
        self.circuit = circuit
        self.width = width
        self.max_workers = max_workers or os.cpu_count() or 1
        self.crossover = crossover
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.chunk_timeout = chunk_timeout
        self.serial = FaultSimulator(circuit, width=width)
        #: Backoff sleeper; tests substitute a recorder.
        self._sleep: Callable[[float], None] = time.sleep
        #: Engine used by the last :meth:`run` call: "serial" or "parallel".
        self.last_engine: str = "serial"
        #: Worker count of the last parallel run (1 when serial).
        self.last_workers: int = 1
        #: Why the last run degraded (chunk failures, timeouts, pool loss),
        #: e.g. ``"ChaosInjectedError: ..."``; None for a clean run.
        self.last_degraded_reason: str | None = None
        #: Chunk re-submissions to a pool after a transient failure.
        self.last_chunk_retries: int = 0
        #: Pool-completed chunks kept while other chunks failed.
        self.last_chunks_salvaged: int = 0
        #: Chunks recovered by the in-process serial engine.
        self.last_chunks_serial: int = 0
        #: Classified failures observed during the last run.
        self.last_failures: list[ChunkFailure] = []

    def engine_info(self) -> dict[str, object]:
        """Engine descriptor of the last run, for run manifests."""
        return {
            "engine": self.last_engine,
            "word_width": self.width,
            "workers": self.last_workers,
            "degraded": self.last_degraded_reason is not None,
            "degraded_reason": self.last_degraded_reason,
            "chunk_retries": self.last_chunk_retries,
            "chunks_salvaged": self.last_chunks_salvaged,
            "chunks_serial": self.last_chunks_serial,
        }

    # ------------------------------------------------------------------
    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns``, fanning out when the job is big enough."""
        if faults is None:
            faults = full_fault_universe(self.circuit)
        self.last_degraded_reason = None
        self.last_chunk_retries = 0
        self.last_chunks_salvaged = 0
        self.last_chunks_serial = 0
        self.last_failures = []
        workers = min(self.max_workers, max(1, len(faults)))
        work = len(faults) * len(patterns)
        if workers <= 1 or work < self.crossover:
            self.last_engine, self.last_workers = "serial", 1
            return self.serial.run(patterns, faults, drop_detected)
        return self._run_supervised(patterns, faults, drop_detected, workers)

    # ------------------------------------------------------------------
    def _run_supervised(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault],
        drop_detected: bool,
        workers: int,
    ) -> FaultSimResult:
        pattern_rows = [list(p) for p in patterns]
        # Stride the partition: cone sizes correlate with list position, so
        # contiguous chunks would load-balance badly.  Striding interleaves
        # cheap and expensive faults; results are order-independent.
        chunks = {i: faults[i::workers] for i in range(workers)}
        plan = chaos.current_plan()

        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        pending = dict(chunks)
        serial_pending: dict[int, list[StuckAtFault]] = {}
        pool_chunks_done = 0
        salvaged = 0

        with obs.span(
            "fault_sim.parallel",
            n_patterns=len(pattern_rows),
            n_faults=len(faults),
            word_width=self.width,
            workers=workers,
        ):
            for attempt in range(self.retry.max_attempts):
                if not pending:
                    break
                if attempt:
                    delay = self.retry.delay(attempt - 1)
                    if delay:
                        self._sleep(delay)
                    obs.inc("resilience.chunk_retries", len(pending))
                    self.last_chunk_retries += len(pending)
                done, failures = self._pool_round(
                    pattern_rows, pending, drop_detected, attempt, plan, workers
                )
                for cid, (chunk_first, chunk_counts) in done.items():
                    first_detection.update(chunk_first)
                    detection_counts.update(chunk_counts)
                    del pending[cid]
                pool_chunks_done += len(done)
                if failures:
                    # Chunks completed in a round where others failed are
                    # *salvaged*: kept, never discarded or recomputed.
                    salvaged += len(done)
                self.last_failures.extend(failures.values())
                # Fatal chunks leave the pool-retry rotation: they re-run
                # serially, where the real exception propagates unmasked.
                for cid, failure in failures.items():
                    if failure.kind is FailureKind.FATAL:
                        serial_pending[cid] = pending.pop(cid)

            serial_pending.update(pending)
            if serial_pending:
                with obs.span(
                    "fault_sim.serial_salvage", n_chunks=len(serial_pending)
                ):
                    groups = pack_patterns(
                        pattern_rows,
                        len(self.circuit.primary_inputs),
                        self.width,
                    )
                    for cid in sorted(serial_pending):
                        chunk_result = self.serial.run_packed(
                            groups,
                            len(pattern_rows),
                            serial_pending[cid],
                            drop_detected,
                        )
                        first_detection.update(chunk_result.first_detection)
                        detection_counts.update(chunk_result.detection_counts)
                self.last_chunks_serial = len(serial_pending)

        if self.last_failures:
            self._record_degradation(salvaged, pool_chunks_done, len(chunks))

        self.last_engine = "parallel" if pool_chunks_done else "serial"
        self.last_workers = workers if pool_chunks_done else 1
        obs.set_gauge("fault_sim.workers", self.last_workers)
        obs.set_gauge("fault_sim.word_width", self.width)
        obs.inc("fault_sim.patterns_applied", len(pattern_rows))
        obs.inc("fault_sim.faults_simulated", len(faults))
        if drop_detected:
            obs.inc("fault_sim.faults_dropped", len(first_detection))
        obs.inc("fault_sim.detections", sum(detection_counts.values()))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=len(pattern_rows),
            detection_counts=detection_counts,
        )

    def _record_degradation(
        self, salvaged: int, pool_chunks_done: int, n_chunks: int
    ) -> None:
        """Count, name and warn about a degraded (but completed) run."""
        head = self.last_failures[0]
        extra = len(self.last_failures) - 1
        reason = head.reason if not extra else f"{head.reason} (+{extra} more)"
        self.last_degraded_reason = reason
        self.last_chunks_salvaged = salvaged
        obs.inc("resilience.degraded_runs")
        obs.inc("resilience.chunks_salvaged", salvaged)
        message = (
            f"parallel fault simulation degraded ({reason}): "
            f"salvaged {salvaged}/{n_chunks} chunks from the pool, "
            f"re-ran {self.last_chunks_serial} serially, "
            f"{self.last_chunk_retries} chunk retries"
        )
        if not pool_chunks_done:
            message += "; falling back to the serial engine"
        warnings.warn(message, RuntimeWarning, stacklevel=4)

    # ------------------------------------------------------------------
    def _pool_round(
        self,
        pattern_rows: list[list[int]],
        pending: dict[int, list[StuckAtFault]],
        drop_detected: bool,
        attempt: int,
        plan: chaos.ChaosPlan | None,
        workers: int,
    ) -> tuple[
        dict[int, tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]],
        dict[int, ChunkFailure],
    ]:
        """Run ``pending`` chunks in one (fresh) pool; classify what failed."""
        from concurrent.futures import Future, ProcessPoolExecutor, wait

        results: dict[
            int, tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]
        ] = {}
        failures: dict[int, ChunkFailure] = {}
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_init_worker,
                initargs=(self.circuit, self.width, pattern_rows, plan),
            )
        except Exception as exc:  # pool never started: every chunk fails
            obs.inc("fault_sim.pool_failures")
            obs.inc(f"fault_sim.pool_failure.{type(exc).__name__}")
            for cid in pending:
                failures[cid] = classify_failure(exc, cid)
            return results, failures

        timed_out = False
        try:
            futures: dict[Future, int] = {}
            submit_failure: BaseException | None = None
            for cid, chunk in sorted(pending.items()):
                try:
                    future = pool.submit(
                        _simulate_chunk, chunk, drop_detected, cid, attempt
                    )
                except Exception as exc:  # pool broke while submitting
                    submit_failure = exc
                    failures[cid] = classify_failure(exc, cid)
                    continue
                futures[future] = cid
            if submit_failure is not None:
                obs.inc("fault_sim.pool_failures")
                obs.inc(f"fault_sim.pool_failure.{type(submit_failure).__name__}")

            deadline = (
                None
                if self.chunk_timeout is None
                else time.monotonic() + self.chunk_timeout
            )
            not_done = set(futures)
            while not_done:
                remaining: float | None = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        timed_out = True
                        for future in not_done:
                            future.cancel()
                            cid = futures[future]
                            failures[cid] = ChunkFailure(
                                chunk_id=cid,
                                kind=FailureKind.TRANSIENT,
                                reason=(
                                    f"ChunkTimeoutError: chunk {cid} exceeded "
                                    f"{self.chunk_timeout}s deadline"
                                ),
                                exception_type="ChunkTimeoutError",
                            )
                        obs.inc("resilience.chunk_timeouts", len(not_done))
                        break
                done, not_done = wait(not_done, timeout=remaining)
                for future in done:
                    cid = futures[future]
                    try:
                        results[cid] = future.result()
                    except Exception as exc:
                        failures[cid] = classify_failure(exc, cid)
                        obs.inc(
                            f"resilience.chunk_failure.{type(exc).__name__}"
                        )
        finally:
            # A hung pool is abandoned (workers keep running until their
            # current task returns); a healthy or broken one joins cleanly.
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return results, failures
