"""Multi-core fault-simulation fan-out with supervised recovery.

:class:`ParallelFaultSimulator` partitions the fault list across a
``concurrent.futures.ProcessPoolExecutor``.  Each worker builds the compiled
engine once and receives the packed pattern groups once, through the pool
initializer; per-task traffic is just a fault sublist out and two small
result maps back.  Per-fault outcomes are independent (dropping one fault
never changes another fault's detections), so any partition of the fault
list reproduces the serial engine bit-exactly — the property tests in
``tests/test_wide_word.py`` and ``tests/test_parallel_resilience.py``
assert it, including under injected failures.

Supervision (see ``docs/RESILIENCE.md``): chunks run as individual futures
with an optional deadline.  A failed or timed-out chunk is classified
through :func:`repro.resilience.classify_failure` — transient failures
(worker crash, timeout, OS resource errors) are retried in a fresh pool
with deterministic backoff, then re-run serially in the parent; fatal
failures (deterministic bugs) skip pool retries and go straight to the
serial phase, where the real exception propagates with full context.
Chunks that completed are *salvaged* — never recomputed, never discarded.
Degradation is never silent: it warns, increments the
``resilience.chunk_retries`` / ``resilience.chunks_salvaged`` /
``resilience.degraded_runs`` counters, and names the reason in
:meth:`ParallelFaultSimulator.engine_info` (and hence the run manifest).

The fan-out also degrades gracefully by *choice*: below a work crossover
(``n_faults x n_patterns``) or with one worker the serial
:class:`~repro.simulation.fault_sim.FaultSimulator` runs in-process instead.

**Worker telemetry** (see ``docs/OBSERVABILITY.md``): when the parent is
collecting (``--profile``/``--trace``), each worker runs its own collector
and ships its span trees and counter *deltas* back inside the chunk result
envelope.  The parent merges an envelope exactly once — at the moment the
chunk is accepted — so fresh-pool retries cannot double-count, and the
merged parallel profile equals a serial run of the same job.  Counters in
:data:`RUN_SCOPED_COUNTERS` are the one exception: every chunk observes the
full pattern sequence, so the parent counts those once itself.
"""

from __future__ import annotations

import os
import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro import obs
from repro.circuit.netlist import Circuit
from repro.obs import attribution
from repro.obs.events import ProgressEvent, RetryEvent
from repro.obs.trace import Span
from repro.resilience import chaos
from repro.resilience.errors import ChunkFailure, FailureKind, classify_failure
from repro.resilience.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.simulation.engines import (
    create_engine,
    default_crossover,
    default_width,
    resolve_engine,
)
from repro.simulation.fault_sim import FaultSimResult
from repro.simulation.faults import StuckAtFault, full_fault_universe

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.engines import Engine

__all__ = ["ParallelFaultSimulator", "DEFAULT_CROSSOVER", "RUN_SCOPED_COUNTERS"]

#: Serial/parallel work crossover (``n_faults x n_patterns``) for the python
#: engine; per-engine defaults live in
#: :func:`repro.simulation.engines.default_crossover` (the numpy kernel's
#: serial throughput is much higher, so its crossover sits far later).
DEFAULT_CROSSOVER = default_crossover("python")

#: Counters with *per-run* semantics: every chunk's engine counts the whole
#: applied sequence, so summing them across chunks would overstate the run.
#: The supervising parent owns these and counts them exactly once; everything
#: else in a worker's counter delta is chunk-additive and merges by summation.
RUN_SCOPED_COUNTERS = frozenset({"fault_sim.patterns_applied"})

# Worker-process state, installed once per worker by _init_worker.  The
# simulator is whichever engine the parent resolved (python or numpy) and
# the packed groups are in that engine's native packed form (``Any``:
# each engine's ``pack``/``run_packed`` pair agrees on the shape, but the
# shapes differ between engines).
_WORKER_SIM: "Engine | None" = None
_WORKER_GROUPS: Any = None
_WORKER_N_PATTERNS: int = 0

#: The worker-telemetry envelope riding along with each chunk result:
#: ``{"worker_pid": int, "counters": {name: delta}, "spans": [records]}``.
ChunkTelemetry = dict[str, Any] | None


def _init_worker(
    circuit: Circuit,
    width: int,
    patterns: list[list[int]],
    plan: chaos.ChaosPlan | None = None,
    collect_telemetry: bool = False,
    collect_attribution: bool = False,
    engine_kind: str = "python",
) -> None:
    """Pool initializer: compile the engine and pack the patterns once.

    The parent ships the *resolved* engine kind (never ``"auto"``), so every
    worker builds exactly the engine the parent's serial path would use.

    When the parent is collecting (``--profile``/``--trace``), the worker
    installs its own collector + registry so each chunk can ship its span
    trees and counter deltas back in the result envelope.  When the parent
    is attributing cost (``--attribution``), the worker runs its own
    attribution collector the same way (never memory-tracing: stage peaks
    belong to the parent's pipeline stages, not to workers).
    """
    global _WORKER_SIM, _WORKER_GROUPS, _WORKER_N_PATTERNS
    chaos.install(plan)
    if collect_telemetry:
        obs.enable()
    if collect_attribution:
        attribution.enable()
    _WORKER_SIM = create_engine(engine_kind, circuit, width=width)
    _WORKER_GROUPS = _WORKER_SIM.pack(patterns)
    _WORKER_N_PATTERNS = len(patterns)


def _simulate_chunk(
    faults: list[StuckAtFault],
    drop_detected: bool,
    chunk_id: int = 0,
    attempt: int = 0,
) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int], ChunkTelemetry]:
    """Simulate one fault chunk against the worker's packed groups.

    Returns the two result maps plus a telemetry envelope (None when the
    worker is not collecting): the worker's counter *deltas* over this chunk
    and the span trees it produced, tagged with the worker's pid.  A chunk
    that fails returns nothing, so the parent only ever merges telemetry for
    work it actually accepted — retries can never double-count.
    """
    assert _WORKER_SIM is not None and _WORKER_GROUPS is not None
    chaos.maybe_inject("parallel.chunk", key=chunk_id, attempt=attempt)
    registry = obs.registry()
    collector = obs.collector()
    attr = attribution.collector()
    counters_before = registry.counter_values() if registry is not None else {}
    attr_before = attr.counter_values() if attr is not None else {}
    roots_before = len(collector.roots) if collector is not None else 0
    result = _WORKER_SIM.run_packed(
        _WORKER_GROUPS, _WORKER_N_PATTERNS, faults, drop_detected
    )
    telemetry: ChunkTelemetry = None
    if registry is not None or attr is not None:
        telemetry = {"worker_pid": os.getpid(), "counters": {}, "spans": []}
    if registry is not None and telemetry is not None:
        deltas = {
            name: value - counters_before.get(name, 0)
            for name, value in registry.counter_values().items()
        }
        telemetry["counters"] = {n: d for n, d in deltas.items() if d > 0}
        telemetry["spans"] = [
            span.to_record()
            for span in (
                collector.roots[roots_before:] if collector is not None else []
            )
        ]
    if attr is not None and telemetry is not None:
        attr_deltas = {
            key: value - attr_before.get(key, 0)
            for key, value in attr.counter_values().items()
        }
        telemetry["attribution"] = {
            "counters": {k: d for k, d in attr_deltas.items() if d > 0}
        }
    return result.first_detection, result.detection_counts, telemetry


class ParallelFaultSimulator:
    """Fault simulator that fans the fault list out over worker processes.

    Drop-in compatible with :class:`FaultSimulator.run`; results are
    bit-exact with the serial engine for both drop modes, in every recovery
    path.

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    width:
        Packed-word width forwarded to every worker's engine; None (default)
        uses the resolved engine's own default
        (:func:`repro.simulation.engines.default_width`).
    max_workers:
        Worker process count; defaults to the machine's CPU count.
    crossover:
        Minimum ``n_faults * n_patterns`` before the pool is worth starting;
        smaller jobs run serially in-process.  None (default) uses the
        resolved engine's calibrated crossover
        (:func:`repro.simulation.engines.default_crossover`).
    retry:
        Bounded-retry policy for transient chunk failures (default:
        :data:`~repro.resilience.retry.DEFAULT_RETRY_POLICY` — one fresh-pool
        retry with deterministic backoff, then serial salvage).
    chunk_timeout:
        Deadline in seconds for a round of chunks; chunks not finished by
        then are treated as transient failures (the hung pool is abandoned).
        None (default) disables the deadline.
    engine:
        Engine registry name — ``"python"`` (default), ``"numpy"`` or
        ``"auto"`` (see :mod:`repro.simulation.engines`).  An explicit
        ``"numpy"`` request raises
        :class:`~repro.simulation.engines.EngineUnavailableError` when the
        platform preflight fails; ``"auto"`` degrades to python and records
        why.
    """

    def __init__(
        self,
        circuit: Circuit,
        width: int | None = None,
        max_workers: int | None = None,
        crossover: int | None = None,
        retry: RetryPolicy | None = None,
        chunk_timeout: float | None = None,
        engine: str = "python",
    ) -> None:
        self.circuit = circuit
        self.requested_engine = engine
        kind, reason = resolve_engine(engine, width)
        self.engine_kind = kind
        self.engine_reason = reason
        self.width = default_width(kind) if width is None else width
        self.max_workers = max_workers or os.cpu_count() or 1
        self.crossover = (
            default_crossover(kind) if crossover is None else crossover
        )
        self.retry = retry or DEFAULT_RETRY_POLICY
        self.chunk_timeout = chunk_timeout
        self.serial = create_engine(kind, circuit, width=self.width)
        #: Backoff sleeper; tests substitute a recorder.
        self._sleep: Callable[[float], None] = time.sleep
        #: Engine used by the last :meth:`run` call: "serial" or "parallel".
        self.last_engine: str = "serial"
        #: Worker count of the last parallel run (1 when serial).
        self.last_workers: int = 1
        #: Why the last run degraded (chunk failures, timeouts, pool loss),
        #: e.g. ``"ChaosInjectedError: ..."``; None for a clean run.
        self.last_degraded_reason: str | None = None
        #: Chunk re-submissions to a pool after a transient failure.
        self.last_chunk_retries: int = 0
        #: Pool-completed chunks kept while other chunks failed.
        self.last_chunks_salvaged: int = 0
        #: Chunks recovered by the in-process serial engine.
        self.last_chunks_serial: int = 0
        #: Classified failures observed during the last run.
        self.last_failures: list[ChunkFailure] = []

    def engine_info(self) -> dict[str, object]:
        """Engine descriptor of the last run, for run manifests.

        ``kind`` is the resolved registry engine (python/numpy),
        ``requested`` the original ``engine=`` request and ``reason`` the
        registry's resolution note — an ``auto`` run always records which
        kernel it picked and why.  ``engine`` stays the serial/parallel
        execution mode for backward manifest compatibility.
        """
        return {
            "engine": self.last_engine,
            "kind": self.engine_kind,
            "requested": self.requested_engine,
            "reason": self.engine_reason,
            "word_width": self.width,
            "workers": self.last_workers,
            "crossover": self.crossover,
            "degraded": self.last_degraded_reason is not None,
            "degraded_reason": self.last_degraded_reason,
            "chunk_retries": self.last_chunk_retries,
            "chunks_salvaged": self.last_chunks_salvaged,
            "chunks_serial": self.last_chunks_serial,
        }

    # ------------------------------------------------------------------
    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns``, fanning out when the job is big enough."""
        if faults is None:
            faults = full_fault_universe(self.circuit)
        self.last_degraded_reason = None
        self.last_chunk_retries = 0
        self.last_chunks_salvaged = 0
        self.last_chunks_serial = 0
        self.last_failures = []
        workers = min(self.max_workers, max(1, len(faults)))
        work = len(faults) * len(patterns)
        if workers <= 1 or work < self.crossover:
            self.last_engine, self.last_workers = "serial", 1
            return self.serial.run(patterns, faults, drop_detected)
        return self._run_supervised(patterns, faults, drop_detected, workers)

    # ------------------------------------------------------------------
    def _run_supervised(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault],
        drop_detected: bool,
        workers: int,
    ) -> FaultSimResult:
        pattern_rows = [list(p) for p in patterns]
        # Stride the partition: cone sizes correlate with list position, so
        # contiguous chunks would load-balance badly.  Striding interleaves
        # cheap and expensive faults; results are order-independent.
        chunks = {i: faults[i::workers] for i in range(workers)}
        plan = chaos.current_plan()

        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        pending = dict(chunks)
        serial_pending: dict[int, list[StuckAtFault]] = {}
        pool_chunks_done = 0
        salvaged = 0
        previous_failures: dict[int, ChunkFailure] = {}

        with obs.span(
            "fault_sim.parallel",
            n_patterns=len(pattern_rows),
            n_faults=len(faults),
            word_width=self.width,
            workers=workers,
        ):
            for attempt in range(self.retry.max_attempts):
                if not pending:
                    break
                if attempt:
                    delay = self.retry.delay(attempt - 1)
                    if delay:
                        self._sleep(delay)
                    obs.inc("resilience.chunk_retries", len(pending))
                    self.last_chunk_retries += len(pending)
                    if obs.events_enabled():
                        for cid in sorted(pending):
                            failure = previous_failures.get(cid)
                            obs.emit(
                                RetryEvent(
                                    point="parallel.chunk",
                                    key=cid,
                                    attempt=attempt,
                                    reason=failure.reason if failure else "",
                                    delay_s=delay,
                                )
                            )
                done, failures = self._pool_round(
                    pattern_rows,
                    pending,
                    drop_detected,
                    attempt,
                    plan,
                    workers,
                    progress=(pool_chunks_done, len(chunks)),
                )
                for cid, (chunk_first, chunk_counts, telemetry) in done.items():
                    first_detection.update(chunk_first)
                    detection_counts.update(chunk_counts)
                    # A chunk leaves ``pending`` the moment it is accepted, so
                    # a later retry round can never merge its telemetry twice.
                    self._merge_chunk_telemetry(telemetry, cid)
                    del pending[cid]
                pool_chunks_done += len(done)
                if failures:
                    # Chunks completed in a round where others failed are
                    # *salvaged*: kept, never discarded or recomputed.
                    salvaged += len(done)
                self.last_failures.extend(failures.values())
                previous_failures = failures
                # Fatal chunks leave the pool-retry rotation: they re-run
                # serially, where the real exception propagates unmasked.
                for cid, failure in failures.items():
                    if failure.kind is FailureKind.FATAL:
                        serial_pending[cid] = pending.pop(cid)

            serial_pending.update(pending)
            if serial_pending:
                with obs.span(
                    "fault_sim.serial_salvage", n_chunks=len(serial_pending)
                ):
                    # ``Any``: the packed shape is engine-specific but always
                    # consumed by the same engine that produced it.
                    groups: Any = self.serial.pack(pattern_rows)
                    for cid in sorted(serial_pending):
                        chunk = serial_pending[cid]
                        chunk_first, chunk_counts = (
                            self.serial._simulate_groups(
                                groups, len(pattern_rows), chunk, drop_detected
                            )
                        )
                        first_detection.update(chunk_first)
                        detection_counts.update(chunk_counts)
                        # The salvage engine leaves counting to us, exactly
                        # like an accepted worker envelope.
                        obs.inc("fault_sim.faults_simulated", len(chunk))
                        if drop_detected:
                            obs.inc("fault_sim.faults_dropped", len(chunk_first))
                        obs.inc(
                            "fault_sim.detections", sum(chunk_counts.values())
                        )
                self.last_chunks_serial = len(serial_pending)

        if self.last_failures:
            self._record_degradation(salvaged, pool_chunks_done, len(chunks))

        self.last_engine = "parallel" if pool_chunks_done else "serial"
        self.last_workers = workers if pool_chunks_done else 1
        obs.set_gauge("fault_sim.workers", self.last_workers)
        obs.set_gauge("fault_sim.word_width", self.width)
        # Run-scoped: counted once for the whole run, never per chunk, so the
        # merged parallel profile matches a serial run of the same job (see
        # RUN_SCOPED_COUNTERS).  Chunk-additive counters arrive via the
        # worker envelopes and the salvage accounting above.
        obs.inc("fault_sim.patterns_applied", len(pattern_rows))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=len(pattern_rows),
            detection_counts=detection_counts,
        )

    def _merge_chunk_telemetry(
        self, telemetry: ChunkTelemetry, chunk_id: int
    ) -> None:
        """Fold one accepted chunk's worker telemetry into the parent.

        Counter deltas merge additively, except the run-scoped names in
        :data:`RUN_SCOPED_COUNTERS` which the parent counts itself.  Worker
        span trees are rebuilt and attached under the currently-open parent
        span (``fault_sim.parallel``), tagged with the worker pid and chunk
        id so reports and the Chrome exporter can lane them per process.
        """
        if not telemetry:
            return
        registry = obs.registry()
        if registry is not None:
            registry.merge_counter_deltas(
                telemetry.get("counters", {}), skip=RUN_SCOPED_COUNTERS
            )
        collector = obs.collector()
        if collector is not None:
            for record in telemetry.get("spans", []):
                span = Span.from_record(record)
                span.attributes.setdefault(
                    "worker_pid", telemetry.get("worker_pid")
                )
                span.attributes["chunk_id"] = chunk_id
                collector.attach(span)
        attr = attribution.collector()
        if attr is not None and "attribution" in telemetry:
            # Work counters are chunk-additive by construction: each chunk's
            # delta measures gate evaluations that actually ran, so summing
            # across accepted chunks is the run's true executed work
            # (including the deliberate per-chunk good-machine redundancy).
            attr.merge_envelope(telemetry["attribution"])

    def _record_degradation(
        self, salvaged: int, pool_chunks_done: int, n_chunks: int
    ) -> None:
        """Count, name and warn about a degraded (but completed) run."""
        head = self.last_failures[0]
        extra = len(self.last_failures) - 1
        reason = head.reason if not extra else f"{head.reason} (+{extra} more)"
        self.last_degraded_reason = reason
        self.last_chunks_salvaged = salvaged
        obs.inc("resilience.degraded_runs")
        obs.inc("resilience.chunks_salvaged", salvaged)
        message = (
            f"parallel fault simulation degraded ({reason}): "
            f"salvaged {salvaged}/{n_chunks} chunks from the pool, "
            f"re-ran {self.last_chunks_serial} serially, "
            f"{self.last_chunk_retries} chunk retries"
        )
        if not pool_chunks_done:
            message += "; falling back to the serial engine"
        warnings.warn(message, RuntimeWarning, stacklevel=4)

    # ------------------------------------------------------------------
    def _pool_round(
        self,
        pattern_rows: list[list[int]],
        pending: dict[int, list[StuckAtFault]],
        drop_detected: bool,
        attempt: int,
        plan: chaos.ChaosPlan | None,
        workers: int,
        progress: tuple[int, int] = (0, 0),
    ) -> tuple[
        dict[
            int,
            tuple[
                dict[StuckAtFault, int],
                dict[StuckAtFault, int],
                ChunkTelemetry,
            ],
        ],
        dict[int, ChunkFailure],
    ]:
        """Run ``pending`` chunks in one (fresh) pool; classify what failed.

        ``progress`` is ``(chunks_done_before_this_round, total_chunks)``,
        used to publish per-chunk :class:`~repro.obs.events.ProgressEvent`\\ s
        with run-wide completion counts.
        """
        from concurrent.futures import Future, ProcessPoolExecutor, wait

        results: dict[
            int,
            tuple[
                dict[StuckAtFault, int],
                dict[StuckAtFault, int],
                ChunkTelemetry,
            ],
        ] = {}
        failures: dict[int, ChunkFailure] = {}
        chunks_done, total_chunks = progress
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_init_worker,
                initargs=(
                    self.circuit,
                    self.width,
                    pattern_rows,
                    plan,
                    obs.is_enabled(),
                    attribution.is_enabled(),
                    self.engine_kind,
                ),
            )
        except Exception as exc:  # pool never started: every chunk fails
            obs.inc("fault_sim.pool_failures")
            obs.inc(f"fault_sim.pool_failure.{type(exc).__name__}")
            for cid in pending:
                failures[cid] = classify_failure(exc, cid)
            return results, failures

        timed_out = False
        try:
            futures: dict[Future, int] = {}
            submitted_at: dict[int, float] = {}
            submit_failure: BaseException | None = None
            for cid, chunk in sorted(pending.items()):
                try:
                    future = pool.submit(
                        _simulate_chunk, chunk, drop_detected, cid, attempt
                    )
                except Exception as exc:  # pool broke while submitting
                    submit_failure = exc
                    failures[cid] = classify_failure(exc, cid)
                    continue
                futures[future] = cid
                submitted_at[cid] = time.perf_counter()
            if submit_failure is not None:
                obs.inc("fault_sim.pool_failures")
                obs.inc(f"fault_sim.pool_failure.{type(submit_failure).__name__}")

            deadline = (
                None
                if self.chunk_timeout is None
                else time.monotonic() + self.chunk_timeout
            )
            not_done = set(futures)
            while not_done:
                remaining: float | None = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        timed_out = True
                        for future in not_done:
                            future.cancel()
                            cid = futures[future]
                            failures[cid] = ChunkFailure(
                                chunk_id=cid,
                                kind=FailureKind.TRANSIENT,
                                reason=(
                                    f"ChunkTimeoutError: chunk {cid} exceeded "
                                    f"{self.chunk_timeout}s deadline"
                                ),
                                exception_type="ChunkTimeoutError",
                            )
                        obs.inc("resilience.chunk_timeouts", len(not_done))
                        break
                done, not_done = wait(not_done, timeout=remaining)
                for future in done:
                    cid = futures[future]
                    try:
                        results[cid] = future.result()
                    except Exception as exc:
                        failures[cid] = classify_failure(exc, cid)
                        obs.inc(
                            f"resilience.chunk_failure.{type(exc).__name__}"
                        )
                        continue
                    chunks_done += 1
                    if obs.events_enabled():
                        telemetry = results[cid][2]
                        obs.emit(
                            ProgressEvent(
                                stage="fault_sim.parallel",
                                completed=chunks_done,
                                total=total_chunks or None,
                                unit="chunks",
                                data={
                                    "chunk_id": cid,
                                    "latency_s": time.perf_counter()
                                    - submitted_at[cid],
                                    "workers": workers,
                                    "worker_pid": (
                                        telemetry.get("worker_pid")
                                        if telemetry
                                        else None
                                    ),
                                },
                            )
                        )
        finally:
            # A hung pool is abandoned (workers keep running until their
            # current task returns); a healthy or broken one joins cleanly.
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
        return results, failures
