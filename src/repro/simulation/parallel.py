"""Multi-core fault-simulation fan-out.

:class:`ParallelFaultSimulator` partitions the fault list across a
``concurrent.futures.ProcessPoolExecutor``.  Each worker builds the compiled
engine once and receives the packed pattern groups once, through the pool
initializer; per-task traffic is just a fault sublist out and two small
result maps back.  Per-fault outcomes are independent (dropping one fault
never changes another fault's detections), so any partition of the fault
list reproduces the serial engine bit-exactly — the property tests in
``tests/test_wide_word.py`` assert it.

The fan-out degrades gracefully: below a work crossover (``n_faults x
n_patterns``), with one worker, or when the pool cannot start (restricted
environments, missing ``fork``/``spawn`` support), the serial
:class:`~repro.simulation.fault_sim.FaultSimulator` runs in-process instead.
"""

from __future__ import annotations

import os
import warnings
from typing import Sequence

from repro import obs
from repro.circuit.library import DEFAULT_WORD_WIDTH
from repro.circuit.netlist import Circuit
from repro.simulation.fault_sim import FaultSimResult, FaultSimulator
from repro.simulation.faults import StuckAtFault, full_fault_universe
from repro.simulation.logic_sim import pack_patterns

__all__ = ["ParallelFaultSimulator", "DEFAULT_CROSSOVER"]

#: Below this many fault x pattern evaluations the pool start-up and pickling
#: overhead outweighs the fan-out; the serial engine runs instead.
DEFAULT_CROSSOVER = 2_000_000

# Worker-process state, installed once per worker by _init_worker.
_WORKER_SIM: FaultSimulator | None = None
_WORKER_GROUPS: list[list[int]] | None = None
_WORKER_N_PATTERNS: int = 0


def _init_worker(circuit: Circuit, width: int, patterns: list[list[int]]) -> None:
    """Pool initializer: compile the engine and pack the patterns once."""
    global _WORKER_SIM, _WORKER_GROUPS, _WORKER_N_PATTERNS
    _WORKER_SIM = FaultSimulator(circuit, width=width)
    _WORKER_GROUPS = pack_patterns(
        patterns, len(circuit.primary_inputs), width
    )
    _WORKER_N_PATTERNS = len(patterns)


def _simulate_chunk(
    faults: list[StuckAtFault], drop_detected: bool
) -> tuple[dict[StuckAtFault, int], dict[StuckAtFault, int]]:
    """Simulate one fault chunk against the worker's packed groups."""
    assert _WORKER_SIM is not None and _WORKER_GROUPS is not None
    result = _WORKER_SIM.run_packed(
        _WORKER_GROUPS, _WORKER_N_PATTERNS, faults, drop_detected
    )
    return result.first_detection, result.detection_counts


class ParallelFaultSimulator:
    """Fault simulator that fans the fault list out over worker processes.

    Drop-in compatible with :class:`FaultSimulator.run`; results are
    bit-exact with the serial engine for both drop modes.

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    width:
        Packed-word width forwarded to every worker's engine.
    max_workers:
        Worker process count; defaults to the machine's CPU count.
    crossover:
        Minimum ``n_faults * n_patterns`` before the pool is worth starting;
        smaller jobs run serially in-process.
    """

    def __init__(
        self,
        circuit: Circuit,
        width: int = DEFAULT_WORD_WIDTH,
        max_workers: int | None = None,
        crossover: int = DEFAULT_CROSSOVER,
    ):
        self.circuit = circuit
        self.width = width
        self.max_workers = max_workers or os.cpu_count() or 1
        self.crossover = crossover
        self.serial = FaultSimulator(circuit, width=width)
        #: Engine used by the last :meth:`run` call: "serial" or "parallel".
        self.last_engine: str = "serial"
        #: Worker count of the last parallel run (1 when serial).
        self.last_workers: int = 1
        #: Why the last run fell back to the serial engine after the pool was
        #: attempted, e.g. ``"OSError: ..."``; None when no degradation
        #: happened (clean parallel run, or serial by crossover/worker count).
        self.last_degraded_reason: str | None = None

    def engine_info(self) -> dict[str, object]:
        """Engine descriptor of the last run, for run manifests."""
        return {
            "engine": self.last_engine,
            "word_width": self.width,
            "workers": self.last_workers,
            "degraded": self.last_degraded_reason is not None,
            "degraded_reason": self.last_degraded_reason,
        }

    # ------------------------------------------------------------------
    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
        drop_detected: bool = True,
    ) -> FaultSimResult:
        """Fault-simulate ``patterns``, fanning out when the job is big enough."""
        if faults is None:
            faults = full_fault_universe(self.circuit)
        self.last_degraded_reason = None
        workers = min(self.max_workers, max(1, len(faults)))
        work = len(faults) * len(patterns)
        if workers <= 1 or work < self.crossover:
            self.last_engine, self.last_workers = "serial", 1
            return self.serial.run(patterns, faults, drop_detected)

        result = self._run_pool(patterns, faults, drop_detected, workers)
        if result is None:  # pool failed to start or died: degrade, loudly
            self.last_engine, self.last_workers = "serial", 1
            return self.serial.run(patterns, faults, drop_detected)
        return result

    def _run_pool(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault],
        drop_detected: bool,
        workers: int,
    ) -> FaultSimResult | None:
        from concurrent.futures import ProcessPoolExecutor

        pattern_rows = [list(p) for p in patterns]
        # Stride the partition: cone sizes correlate with list position, so
        # contiguous chunks would load-balance badly.  Striding interleaves
        # cheap and expensive faults; results are order-independent.
        n_chunks = workers
        chunks = [faults[i::n_chunks] for i in range(n_chunks)]
        first_detection: dict[StuckAtFault, int] = {}
        detection_counts: dict[StuckAtFault, int] = {}
        try:
            with obs.span(
                "fault_sim.parallel",
                n_patterns=len(pattern_rows),
                n_faults=len(faults),
                word_width=self.width,
                workers=workers,
            ):
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(self.circuit, self.width, pattern_rows),
                ) as pool:
                    for chunk_first, chunk_counts in pool.map(
                        _simulate_chunk,
                        chunks,
                        [drop_detected] * len(chunks),
                    ):
                        first_detection.update(chunk_first)
                        detection_counts.update(chunk_counts)
        except Exception as exc:  # noqa: BLE001 - any pool failure degrades to serial
            # Never degrade silently: record why, count it (by exception
            # type), and warn.  The reason is surfaced through
            # ``engine_info()`` into the run manifest.
            reason = f"{type(exc).__name__}: {exc}"
            self.last_degraded_reason = reason
            obs.inc("fault_sim.pool_failures")
            obs.inc(f"fault_sim.pool_failure.{type(exc).__name__}")
            warnings.warn(
                "parallel fault simulation failed "
                f"({reason}); falling back to the serial engine",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

        self.last_engine, self.last_workers = "parallel", workers
        obs.set_gauge("fault_sim.workers", workers)
        obs.set_gauge("fault_sim.word_width", self.width)
        obs.inc("fault_sim.patterns_applied", len(pattern_rows))
        obs.inc("fault_sim.faults_simulated", len(faults))
        if drop_detected:
            obs.inc("fault_sim.faults_dropped", len(first_detection))
        obs.inc("fault_sim.detections", sum(detection_counts.values()))
        return FaultSimResult(
            faults=list(faults),
            first_detection=first_detection,
            n_patterns=len(pattern_rows),
            detection_counts=detection_counts,
        )
