"""Transition (gate-delay) fault model and simulator.

The paper points to delay-fault testing [Park/Mercer/Williams 1989] as one of
the "more elaborated" techniques needed for zero-defect strategies: many
defects that escape steady-state voltage testing (notably stuck-open
transistors, which behave sequentially) *are* caught by two-pattern delay
tests.  This module provides the classic transition-fault abstraction:

* a **slow-to-rise** fault on net ``n`` is detected by a vector pair
  ``(t_{k-1}, t_k)`` that launches a rising transition on ``n`` (value 0 then
  1) and propagates ``n`` stuck-at-0 behaviour to an output on ``t_k``;
* **slow-to-fall** is the dual.

Detection reuses the packed stuck-at machinery, so simulating the whole
transition universe over the paper's vector sequence costs about as much as
one extra stuck-at fault-simulation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import StuckAtFault
from repro.simulation.logic_sim import pack_patterns

__all__ = ["TransitionFault", "TransitionSimResult", "TransitionFaultSimulator",
           "transition_universe"]


@dataclass(frozen=True)
class TransitionFault:
    """A gross gate-delay fault on one net."""

    net: str
    slow_to: int  # 1 = slow-to-rise, 0 = slow-to-fall

    def __post_init__(self) -> None:
        if self.slow_to not in (0, 1):
            raise ValueError("slow_to must be 0 or 1")

    def __str__(self) -> str:
        kind = "STR" if self.slow_to else "STF"
        return f"{self.net}/{kind}"


def transition_universe(circuit: Circuit) -> list[TransitionFault]:
    """Slow-to-rise and slow-to-fall on every net."""
    faults = []
    for net in circuit.nets:
        faults.append(TransitionFault(net, 1))
        faults.append(TransitionFault(net, 0))
    return faults


@dataclass
class TransitionSimResult:
    """First-detection indices for transition faults.

    Indices are 1-based capture-vector positions; the first vector of a
    sequence can never detect (no launch vector precedes it).
    """

    faults: list[TransitionFault]
    first_detection: dict[TransitionFault, int] = field(default_factory=dict)
    n_patterns: int = 0

    @property
    def coverage(self) -> float:
        """Final transition-fault coverage."""
        if not self.faults:
            return 1.0
        return len(self.first_detection) / len(self.faults)

    def coverage_at(self, k: int) -> float:
        """Coverage after the first ``k`` vectors."""
        if not self.faults:
            return 1.0
        hits = sum(1 for v in self.first_detection.values() if v <= k)
        return hits / len(self.faults)


class TransitionFaultSimulator:
    """Two-pattern (launch/capture) transition-fault simulation."""

    def __init__(self, circuit: Circuit, width: int | None = None):
        circuit.validate()
        self.circuit = circuit
        if width is None:
            self.stuck = FaultSimulator(circuit)
        else:
            self.stuck = FaultSimulator(circuit, width=width)
        self.width = self.stuck.width

    def run(
        self,
        patterns: Sequence[Sequence[int]],
        faults: list[TransitionFault] | None = None,
    ) -> TransitionSimResult:
        """Simulate consecutive vector pairs against the transition faults."""
        if faults is None:
            faults = transition_universe(self.circuit)
        n_inputs = len(self.circuit.primary_inputs)
        width = self.width
        groups = pack_patterns(patterns, n_inputs, width)
        goods = [self.stuck.logic.simulate_packed(words) for words in groups]

        result = TransitionSimResult(
            faults=list(faults), n_patterns=len(patterns)
        )
        active = list(faults)
        previous_bit: dict[str, int] = {}
        for g, good in enumerate(goods):
            if not active:
                break
            base = g * width
            n_here = min(width, len(patterns) - base)
            group_mask = (1 << n_here) - 1
            survivors = []
            for fault in active:
                values = good[fault.net]
                # Launch mask: previous vector at the complement, current at
                # the slow-to value.
                prev = (values << 1) & group_mask
                if base > 0:
                    prev |= previous_bit.get(fault.net, 0)
                if fault.slow_to == 1:
                    launch = (~prev) & values  # 0 -> 1
                else:
                    launch = prev & (~values)  # 1 -> 0
                launch &= group_mask
                if g == 0:
                    launch &= ~1  # the very first vector has no launch
                detected = 0
                if launch:
                    # Slow transition means the old (complement) value
                    # persists at capture time: stuck-at complement.
                    stuck = StuckAtFault(fault.net, 1 - fault.slow_to)
                    detected = self.stuck.detection_word(stuck, good) & launch
                if detected:
                    first = base + ((detected & -detected).bit_length() - 1) + 1
                    result.first_detection[fault] = first
                else:
                    survivors.append(fault)
            for net in {f.net for f in survivors}:
                values = good[net]
                previous_bit[net] = (values >> (n_here - 1)) & 1
            active = survivors
        return result
