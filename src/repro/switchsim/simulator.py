"""Switch-level fault simulation of layout-extracted realistic faults.

Plays the role of the paper's *swift* simulator: applies the stuck-at test
sequence to every extracted fault and records, per fault, the first detecting
vector under three detection criteria:

* **strict voltage** — a guaranteed, fully-resolved logic flip reaches a
  primary output (intermediate/unknown levels never count; floating inputs
  must fail under *both* trapped-charge assumptions);
* **potential voltage** — the classic switch-level-simulator convention: an
  unknown (X) level reaching a sensitised primary output also counts, and a
  floating input counts under *either* charge assumption.  Production
  fault simulators of the paper's era (including the original *swift*)
  report this measure;
* **IDDQ** — a quiescent-current test flags the vector (contention or a
  conducting bridge), regardless of logic values.

Mechanics: each behavioural fault class reduces to masked gate-level
injections —

* a bridge resolves per vector by the two drivers' strengths; winning-side
  vectors become masked stuck-at injections, intermediate-voltage vectors
  count as potential detections when the X reaches an output;
* stuck-on devices create cell-level contention, resolved the same way;
* stuck-open devices make the cell output float on the vectors where the
  broken network should drive, with charge-retention (sequence) semantics;
* floating inputs are evaluated under both trapped-charge assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.circuit.library import GateType
from repro.circuit.netlist import Gate
from repro.defects.fault_types import (
    BridgeFault,
    FloatingNetFault,
    RealisticFault,
    TransistorGateOpen,
    TransistorStuckOn,
    TransistorStuckOpen,
)
from repro.layout.cells import GND, VDD
from repro.layout.design import LayoutDesign
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import FaultSite, StuckAtFault
from repro.simulation.logic_sim import pack_patterns
from repro.switchsim.strengths import (
    PI_STRENGTH,
    SUPPLY_STRENGTH,
    V_HIGH,
    V_LOW,
    cell_conductances,
    solve_with_tap,
)

__all__ = ["SwitchSimResult", "SwitchLevelFaultSimulator", "Detection"]

_SUPPLIES = (VDD, GND)


@dataclass(frozen=True)
class Detection:
    """First-detection indices for one fault under each criterion."""

    strict: int | None = None
    potential: int | None = None
    iddq: int | None = None
    #: Peak quiescent current (VDD x conductance units) over the sequence.
    iddq_current: float = 0.0

    def merged_potential(self) -> int | None:
        """Potential never later than strict; normalise just in case."""
        candidates = [k for k in (self.strict, self.potential) if k is not None]
        return min(candidates) if candidates else None


@dataclass
class SwitchSimResult:
    """Per-fault first-detection indices under all detection techniques."""

    faults: list[RealisticFault]
    first_detection: dict[int, int] = field(default_factory=dict)
    first_detection_potential: dict[int, int] = field(default_factory=dict)
    first_detection_iddq: dict[int, int] = field(default_factory=dict)
    #: Peak quiescent current per fault (conductance units x VDD; only
    #: contention-causing faults appear).
    iddq_peak: dict[int, float] = field(default_factory=dict)
    n_patterns: int = 0

    def detected_voltage(self, fault: RealisticFault) -> int | None:
        """First strictly-detecting vector under voltage testing, or None."""
        return self.first_detection.get(id(fault))

    def detected_potential(self, fault: RealisticFault) -> int | None:
        """First (at least potentially) detecting vector, or None."""
        return self.first_detection_potential.get(id(fault))

    def detected_iddq(self, fault: RealisticFault) -> int | None:
        """First detecting vector under IDDQ testing, or None."""
        return self.first_detection_iddq.get(id(fault))

    def iddq_peak_current(self, fault: RealisticFault) -> float:
        """Largest quiescent current the fault draws over the sequence."""
        return self.iddq_peak.get(id(fault), 0.0)


@dataclass
class _CellInfo:
    gate: Gate
    instance: str
    inputs: tuple[str, ...]
    output: str
    gate_type: GateType


class SwitchLevelFaultSimulator:
    """Simulator bound to one layout design and one vector sequence."""

    def __init__(
        self,
        design: LayoutDesign,
        patterns: Sequence[Sequence[int]],
        v_low: float = V_LOW,
        v_high: float = V_HIGH,
    ):
        self.design = design
        self.mapped = design.mapped
        self.fault_sim = FaultSimulator(self.mapped)
        self.width = self.fault_sim.width
        self.patterns = [list(p) for p in patterns]
        self.n_patterns = len(self.patterns)
        if not 0 < v_low <= 0.5 <= v_high < 1:
            raise ValueError("thresholds must satisfy 0 < v_low <= 0.5 <= v_high < 1")
        self.v_low = v_low
        self.v_high = v_high

        self.cells: dict[str, _CellInfo] = {}
        self.driver_cell: dict[str, _CellInfo] = {}
        for gate in self.mapped.gates:
            info = _CellInfo(gate, gate.name, gate.inputs, gate.output, gate.gate_type)
            self.cells[gate.name] = info
            self.driver_cell[gate.output] = info

        self._simulate_good()

    # ------------------------------------------------------------------
    # Fault-free preparation
    # ------------------------------------------------------------------
    def _simulate_good(self) -> None:
        n_inputs = len(self.mapped.primary_inputs)
        width = self.width
        self.groups = pack_patterns(self.patterns, n_inputs, width)
        self.good: list[dict[str, int]] = [
            self.fault_sim.logic.simulate_packed(words) for words in self.groups
        ]
        self.group_masks = []
        for g in range(len(self.groups)):
            n_here = min(width, self.n_patterns - g * width)
            self.group_masks.append((1 << n_here) - 1)

        # Per-net value arrays over all vectors (numpy uint8).
        nets = self.mapped.nets
        self.values: dict[str, np.ndarray] = {}
        for net in nets:
            bits = np.zeros(self.n_patterns, dtype=np.uint8)
            for g, good in enumerate(self.good):
                word = good[net]
                base = g * width
                n_here = min(width, self.n_patterns - base)
                for b in range(n_here):
                    bits[base + b] = (word >> b) & 1
            self.values[net] = bits

        # Per-net drive strength arrays (strength holding the current value).
        self.drive: dict[str, np.ndarray] = {}
        for net in nets:
            self.drive[net] = self._net_drive(net)

    def _net_drive(self, net: str) -> np.ndarray:
        if net in _SUPPLIES:
            return np.full(self.n_patterns, SUPPLY_STRENGTH)
        cell = self.driver_cell.get(net)
        if cell is None:  # primary input: tester-driven
            return np.full(self.n_patterns, PI_STRENGTH)
        combos = self._combo_indices(cell)
        n = len(cell.inputs)
        g_up = np.zeros(2**n)
        g_down = np.zeros(2**n)
        for code in range(2**n):
            bits = tuple((code >> i) & 1 for i in range(n))
            up, down = cell_conductances(cell.gate_type, bits)
            g_up[code], g_down[code] = up, down
        value = self.values[net]
        return np.where(value == 1, g_up[combos], g_down[combos])

    def _combo_indices(self, cell: _CellInfo) -> np.ndarray:
        combos = np.zeros(self.n_patterns, dtype=np.int64)
        for i, net in enumerate(cell.inputs):
            combos |= self.values[net].astype(np.int64) << i
        return combos

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, faults: Sequence[RealisticFault]) -> SwitchSimResult:
        """Simulate every fault; return first-detection indices."""
        result = SwitchSimResult(faults=list(faults), n_patterns=self.n_patterns)
        with obs.span(
            "switch_sim.run", n_faults=len(result.faults), n_patterns=self.n_patterns
        ):
            for fault in result.faults:
                det = self._dispatch(fault)
                if det.strict is not None:
                    result.first_detection[id(fault)] = det.strict
                potential = det.merged_potential()
                if potential is not None:
                    result.first_detection_potential[id(fault)] = potential
                if det.iddq is not None:
                    result.first_detection_iddq[id(fault)] = det.iddq
                if det.iddq_current > 0:
                    result.iddq_peak[id(fault)] = det.iddq_current
        obs.inc("switch_sim.faults_simulated", len(result.faults))
        obs.inc("switch_sim.detected_strict", len(result.first_detection))
        obs.inc(
            "switch_sim.detected_potential", len(result.first_detection_potential)
        )
        obs.inc("switch_sim.detected_iddq", len(result.first_detection_iddq))
        return result

    def _dispatch(self, fault: RealisticFault) -> Detection:
        if isinstance(fault, BridgeFault):
            return self._bridge(fault)
        if isinstance(fault, TransistorStuckOn):
            return self._stuck_on(fault.transistor)
        if isinstance(fault, TransistorStuckOpen):
            return self._stuck_open(fault.transistors)
        if isinstance(fault, TransistorGateOpen):
            return self._gate_open(fault.transistor)
        if isinstance(fault, FloatingNetFault):
            return self._floating_net(fault)
        raise TypeError(f"unknown fault class {type(fault).__name__}")

    # ------------------------------------------------------------------
    # Masked packed detection helpers
    # ------------------------------------------------------------------
    def _mask_words(self, mask: np.ndarray) -> list[int]:
        words = []
        width = self.width
        for g in range(len(self.groups)):
            base = g * width
            n_here = min(width, self.n_patterns - base)
            word = 0
            for b in range(n_here):
                if mask[base + b]:
                    word |= 1 << b
            words.append(word)
        return words

    def _first_masked_detection(
        self, injections: list[tuple[list[StuckAtFault], np.ndarray]]
    ) -> int | None:
        """First vector where any (forces, vector-mask) injection misbehaves."""
        mask_words = [
            (forces, self._mask_words(mask))
            for forces, mask in injections
            if mask.any()
        ]
        if not mask_words:
            return None
        for g, good in enumerate(self.good):
            hit = 0
            for forces, words in mask_words:
                word = words[g] & self.group_masks[g]
                if not word:
                    continue
                if len(forces) == 1:
                    diff = self.fault_sim.detection_word(forces[0], good)
                else:
                    diff = self.fault_sim.detection_word_multi(forces, good)
                hit |= diff & word
            if hit:
                return g * self.width + ((hit & -hit).bit_length() - 1) + 1
        return None

    @staticmethod
    def _first_true(mask: np.ndarray) -> int | None:
        indices = np.flatnonzero(mask)
        return int(indices[0]) + 1 if indices.size else None

    def _flip_injections(
        self, net: str, flip0: np.ndarray, flip1: np.ndarray
    ) -> list[tuple[list[StuckAtFault], np.ndarray]]:
        """Masked single-net injections for force-to-0/force-to-1 vectors."""
        if net in _SUPPLIES:
            return []
        injections = []
        if flip0.any():
            injections.append(([StuckAtFault(net, 0)], flip0))
        if flip1.any():
            injections.append(([StuckAtFault(net, 1)], flip1))
        return injections

    def _x_injections(
        self, net: str, x_mask: np.ndarray, values: np.ndarray
    ) -> list[tuple[list[StuckAtFault], np.ndarray]]:
        """Potential-detection injections: force opposite of good at X vectors."""
        if net in _SUPPLIES or not x_mask.any():
            return []
        return self._flip_injections(net, x_mask & (values == 1), x_mask & (values == 0))

    # ------------------------------------------------------------------
    # Bridge faults
    # ------------------------------------------------------------------
    def _bridge(self, fault: BridgeFault) -> Detection:
        a, b = fault.net_a, fault.net_b
        if {a, b} == set(_SUPPLIES):
            # Power-to-ground short: the die draws massive current and no
            # valid levels exist — any vector fails either test.
            if self.n_patterns:
                return Detection(1, 1, 1, iddq_current=1e3)
            return Detection()
        if "#" in a or "#" in b:
            return self._bridge_internal(fault)

        va = self._rail_or_values(a)
        vb = self._rail_or_values(b)
        diff = va != vb
        if not diff.any():
            return Detection()
        iddq = self._first_true(diff)

        ga = self._rail_or_drive(a)
        gb = self._rail_or_drive(b)
        # Quiescent current of the fight: VDD through the two drive paths in
        # series (zero bridge resistance).
        fight_current = np.where(diff, ga * gb / (ga + gb), 0.0)
        peak_current = float(fight_current.max()) if diff.any() else 0.0
        v_node = (ga * va + gb * vb) / (ga + gb)
        # Wired-AND tie-break: an exactly balanced fight resolves low.
        low_wins = (v_node <= self.v_low) | (v_node == 0.5)
        a_wins = diff & (np.where(va == 1, v_node >= self.v_high, low_wins))
        b_wins = diff & (np.where(vb == 1, v_node >= self.v_high, low_wins))
        x_mask = diff & ~a_wins & ~b_wins

        strict_injections = []
        for net, wins, values in ((b, a_wins, vb), (a, b_wins, va)):
            strict_injections.extend(
                self._flip_injections(net, wins & (values == 1), wins & (values == 0))
            )
        strict = self._first_masked_detection(strict_injections)

        potential_injections = list(strict_injections)
        potential_injections.extend(self._x_injections(a, x_mask, va))
        potential_injections.extend(self._x_injections(b, x_mask, vb))
        potential = self._first_masked_detection(potential_injections)
        return Detection(strict, potential, iddq, iddq_current=peak_current)

    def _rail_or_values(self, net: str) -> np.ndarray:
        if net == VDD:
            return np.ones(self.n_patterns, dtype=np.uint8)
        if net == GND:
            return np.zeros(self.n_patterns, dtype=np.uint8)
        return self.values[net]

    def _rail_or_drive(self, net: str) -> np.ndarray:
        if net in _SUPPLIES:
            return np.full(self.n_patterns, SUPPLY_STRENGTH)
        return self.drive[net]

    def _bridge_internal(self, fault: BridgeFault) -> Detection:
        """Bridge between an external net and a cell-internal chain node."""
        internal = fault.net_a if "#" in fault.net_a else fault.net_b
        external = fault.net_b if internal == fault.net_a else fault.net_a
        if "#" in external:
            # Internal-to-internal bridges across cells: both nodes sit
            # inside series stacks; the vector-level effect is at worst an
            # intermediate level.  Voltage-undetectable; IDDQ flags the
            # conducting pair (conservatively: from the first vector, at a
            # weak stack-limited current).
            if self.n_patterns:
                return Detection(None, None, 1, iddq_current=0.1)
            return Detection()
        instance, tag = internal.split("#", 1)
        cell = self.cells.get(instance)
        if cell is None:
            return Detection()
        tap_index = int(tag[1:])

        out = cell.output
        combos = self._combo_indices(cell)
        ext_vals = self._rail_or_values(external)
        ext_drive = self._rail_or_drive(external)
        out_vals = self.values[out]

        out_flip0 = np.zeros(self.n_patterns, dtype=bool)
        out_flip1 = np.zeros(self.n_patterns, dtype=bool)
        out_x = np.zeros(self.n_patterns, dtype=bool)
        ext_flip0 = np.zeros(self.n_patterns, dtype=bool)
        ext_flip1 = np.zeros(self.n_patterns, dtype=bool)
        ext_x = np.zeros(self.n_patterns, dtype=bool)
        iddq_mask = np.zeros(self.n_patterns, dtype=bool)

        n = len(cell.inputs)
        for k in range(self.n_patterns):
            bits = tuple((int(combos[k]) >> i) & 1 for i in range(n))
            out_new, tap_val = solve_with_tap(
                cell.gate_type,
                bits,
                tap_index,
                float(ext_vals[k]),
                float(ext_drive[k]),
            )
            good_out = int(out_vals[k])
            if out_new == 2:
                out_x[k] = True
            elif out_new != good_out:
                (out_flip1 if out_new else out_flip0)[k] = True
            if external not in _SUPPLIES:
                if tap_val == 2:
                    ext_x[k] = True
                elif tap_val != int(ext_vals[k]):
                    (ext_flip1 if tap_val else ext_flip0)[k] = True
            if out_new == 2 or tap_val == 2 or out_new != good_out:
                iddq_mask[k] = True

        strict_injections = self._flip_injections(out, out_flip0, out_flip1)
        strict_injections.extend(self._flip_injections(external, ext_flip0, ext_flip1))
        strict = self._first_masked_detection(strict_injections)

        potential_injections = list(strict_injections)
        potential_injections.extend(self._x_injections(out, out_x, out_vals))
        potential_injections.extend(self._x_injections(external, ext_x, ext_vals))
        potential = self._first_masked_detection(potential_injections)
        peak = 0.0
        if iddq_mask.any():
            # The fight runs through the external driver and the cell stack;
            # bound it by the external drive strength at the worst vector.
            peak = float(np.where(iddq_mask, np.minimum(ext_drive, 4.0), 0.0).max())
        return Detection(strict, potential, self._first_true(iddq_mask), iddq_current=peak)

    # ------------------------------------------------------------------
    # Transistor faults
    # ------------------------------------------------------------------
    def _device(self, name: str) -> tuple[_CellInfo, str, int] | None:
        instance, dev = name.rsplit(".", 1)
        cell = self.cells.get(instance)
        if cell is None:
            return None
        return cell, dev[0].lower(), int(dev[1:])

    def _faulty_tables(
        self,
        cell: _CellInfo,
        n_mods: dict[int, str],
        p_mods: dict[int, str],
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(cell.inputs)
        g_up = np.zeros(2**n)
        g_down = np.zeros(2**n)
        for code in range(2**n):
            bits = tuple((code >> i) & 1 for i in range(n))
            up, down = cell_conductances(cell.gate_type, bits, n_mods, p_mods)
            g_up[code], g_down[code] = up, down
        return g_up, g_down

    def _stuck_on(self, device: str) -> Detection:
        located = self._device(device)
        if located is None:
            return Detection()
        cell, polarity, index = located
        n_mods = {index: "on"} if polarity == "n" else {}
        p_mods = {index: "on"} if polarity == "p" else {}
        g_up, g_down = self._faulty_tables(cell, n_mods, p_mods)

        combos = self._combo_indices(cell)
        up = g_up[combos]
        down = g_down[combos]
        out_vals = self.values[cell.output]

        contention = (up > 0) & (down > 0)
        iddq = self._first_true(contention)
        with np.errstate(invalid="ignore", divide="ignore"):
            fight = np.where(contention, up * down / np.where(up + down > 0, up + down, 1.0), 0.0)
        peak_current = float(fight.max()) if contention.any() else 0.0

        total = up + down
        with np.errstate(invalid="ignore", divide="ignore"):
            v_node = np.where(total > 0, up / np.where(total > 0, total, 1.0), np.nan)
        flips1 = (v_node >= self.v_high) & (out_vals == 0)
        flips0 = ((v_node <= self.v_low) | (v_node == 0.5)) & (out_vals == 1)
        x_mask = contention & (v_node > self.v_low) & (v_node < self.v_high) & (v_node != 0.5)

        strict_injections = self._flip_injections(cell.output, flips0, flips1)
        strict = self._first_masked_detection(strict_injections)
        potential_injections = list(strict_injections)
        potential_injections.extend(self._x_injections(cell.output, x_mask, out_vals))
        potential = self._first_masked_detection(potential_injections)
        return Detection(strict, potential, iddq, iddq_current=peak_current)

    def _stuck_open(self, devices: tuple[str, ...]) -> Detection:
        by_cell: dict[str, tuple[_CellInfo, dict[int, str], dict[int, str]]] = {}
        for name in devices:
            located = self._device(name)
            if located is None:
                continue
            cell, polarity, index = located
            entry = by_cell.setdefault(cell.instance, (cell, {}, {}))
            if polarity == "n":
                entry[1][index] = "absent"
            else:
                entry[2][index] = "absent"
        if not by_cell:
            return Detection()
        # Multi-cell stuck-open sets (e.g. a supply-rail break) are handled
        # per cell; detection by any cell's misbehaviour counts.
        strict: int | None = None
        potential: int | None = None
        for cell, n_mods, p_mods in by_cell.values():
            det = self._stuck_open_one_cell(cell, n_mods, p_mods)
            strict = _min_opt(strict, det.strict)
            potential = _min_opt(potential, det.merged_potential())
        return Detection(strict, potential, None)  # no quiescent current

    def _stuck_open_one_cell(
        self,
        cell: _CellInfo,
        n_mods: dict[int, str],
        p_mods: dict[int, str],
    ) -> Detection:
        g_up, g_down = self._faulty_tables(cell, n_mods, p_mods)
        combos = self._combo_indices(cell)
        up = g_up[combos]
        down = g_down[combos]
        out_vals = self.values[cell.output]

        # Sequential charge-retention evaluation of the faulty output.
        flips0 = np.zeros(self.n_patterns, dtype=bool)
        flips1 = np.zeros(self.n_patterns, dtype=bool)
        x_mask = np.zeros(self.n_patterns, dtype=bool)
        state = 2  # unknown initial charge
        for k in range(self.n_patterns):
            if up[k] > 0 and down[k] <= 0:
                faulty = 1
            elif down[k] > 0 and up[k] <= 0:
                faulty = 0
            elif up[k] <= 0 and down[k] <= 0:
                faulty = state  # floating: retains charge
            else:  # residual contention (cannot happen in these families)
                faulty = 2
            if faulty == 2:
                x_mask[k] = True
            else:
                state = faulty
                good = int(out_vals[k])
                if faulty != good:
                    (flips1 if faulty else flips0)[k] = True

        strict_injections = self._flip_injections(cell.output, flips0, flips1)
        strict = self._first_masked_detection(strict_injections)
        potential_injections = list(strict_injections)
        potential_injections.extend(
            self._x_injections(cell.output, x_mask, out_vals)
        )
        potential = self._first_masked_detection(potential_injections)
        return Detection(strict, potential, None)

    def _gate_open(self, device: str) -> Detection:
        """Floating single gate: unknown but fixed state.

        Strict voltage detection requires failing under both the always-on
        and always-off assumption; potential detection under either.
        """
        located = self._device(device)
        if located is None:
            return Detection()
        cell, polarity, index = located
        off_mods = ({index: "absent"}, {}) if polarity == "n" else ({}, {index: "absent"})

        det_on = self._stuck_on(device)
        det_off = self._stuck_open_one_cell(cell, *off_mods)
        strict = _max_opt(det_on.strict, det_off.strict)
        potential = _min_opt(det_on.merged_potential(), det_off.merged_potential())
        return Detection(
            strict, potential, det_on.iddq, iddq_current=det_on.iddq_current
        )

    # ------------------------------------------------------------------
    # Floating-net (open) faults
    # ------------------------------------------------------------------
    def _floating_net(self, fault: FloatingNetFault) -> Detection:
        if fault.floating_inputs:
            return self._floating_inputs(fault)
        if fault.stuck_open:
            return self._stuck_open(fault.stuck_open)
        # Only a primary-output observer floats: the tester cannot *rely* on
        # the unknown level (strict: undetected) but will very likely see a
        # wrong value at some point (potential: first vector).
        if fault.floats_output_port and self.n_patterns:
            return Detection(None, 1, None)
        return Detection()

    def _floating_inputs(self, fault: FloatingNetFault) -> Detection:
        net = fault.net
        if net not in self.values:
            return Detection()
        forces_template: list[tuple[str, int]] = []
        for instance, _ in fault.floating_inputs:
            cell = self.cells.get(instance)
            if cell is None:
                continue
            for pin, pin_net in enumerate(cell.inputs):
                if pin_net == net:
                    forces_template.append((instance, pin))
        if not forces_template:
            return Detection()

        firsts: list[int | None] = []
        net_vals = self.values[net]
        for assumption in (0, 1):
            forces = [
                StuckAtFault(net, assumption, FaultSite.GATE_INPUT, inst, pin)
                for inst, pin in forces_template
            ]
            mask = net_vals == (1 - assumption)
            if not mask.any():
                firsts.append(None)
                continue
            firsts.append(self._first_masked_detection([(forces, mask)]))

        strict = None
        if firsts[0] is not None and firsts[1] is not None:
            strict = max(firsts[0], firsts[1])
        potential = _min_opt(firsts[0], firsts[1])
        return Detection(strict, potential, None)


def _min_opt(a: int | None, b: int | None) -> int | None:
    candidates = [x for x in (a, b) if x is not None]
    return min(candidates) if candidates else None


def _max_opt(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return max(a, b)
