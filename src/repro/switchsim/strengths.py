"""Cell drive-strength models for switch-level evaluation.

The physical library contains three CMOS families (INV, NAND-n, NOR-n), so
pull-up/pull-down conductances have closed forms: a series chain of ``n``
devices of conductance ``g`` gives ``g/n``; ``k`` parallel devices give
``k*g``.  Device conductances come from the cell generator's W/L and mobility
ratio (NMOS 3.0, PMOS 1.5 conductance units).

Contention (a bridge, a stuck-on device) is resolved by the resistive-divider
voltage ``v = sum(G_i * V_i) / sum(G_i)`` with CMOS-style thresholds: above
``V_HIGH`` reads 1, below ``V_LOW`` reads 0, in between is X (an intermediate
voltage a steady-state voltage test cannot rely on — but an IDDQ test flags).

For faults that tap a cell-*internal* node (diffusion bridges to another net,
oxide shorts into a chain), :func:`solve_with_tap` solves the small resistive
network exactly via its Laplacian.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.circuit.library import GateType

__all__ = [
    "N_STRENGTH",
    "P_STRENGTH",
    "PI_STRENGTH",
    "SUPPLY_STRENGTH",
    "V_LOW",
    "V_HIGH",
    "X",
    "cell_conductances",
    "resolve_contention",
    "divider_value",
    "solve_with_tap",
]

#: Device conductances (W/L * mobility).  NMOS mobility is ~2.5x PMOS at
#: equal geometry, which is why bridged nodes usually resolve low — the
#: classic "0 dominates" behaviour of CMOS bridging faults.
N_STRENGTH = 4.0
P_STRENGTH = 1.5
#: Strength of an external tester driver on a primary input.
PI_STRENGTH = 10.0
#: Effectively infinite strength of the supply rails.
SUPPLY_STRENGTH = 1e6

#: Logic thresholds on the resolved node voltage (VDD = 1).  The band in
#: between is an intermediate level a voltage test cannot rely on.  The band
#: is narrow: real bridges resolve decisively at the downstream gate
#: threshold unless the fight is almost perfectly balanced (e.g. two
#: tester-driven primary inputs bridged together).  The ablation bench
#: ``benchmarks/test_ablation_thresholds.py`` sweeps this band.
V_LOW = 0.49
V_HIGH = 0.51

#: Ternary "unknown" marker shared with the gate-level 3-valued code.
X = 2

# Device modification states used by fault injection.
ON, OFF, ABSENT = "on", "off", "absent"


def _n_conducting(value: int, mod: str | None) -> bool | None:
    """NMOS conduction for a gate value (None = unknown)."""
    if mod == ON:
        return True
    if mod in (OFF, ABSENT):
        return False
    if value == X:
        return None
    return value == 1


def _p_conducting(value: int, mod: str | None) -> bool | None:
    if mod == ON:
        return True
    if mod in (OFF, ABSENT):
        return False
    if value == X:
        return None
    return value == 0


def cell_conductances(
    gate_type: GateType,
    inputs: tuple[int, ...],
    n_mods: dict[int, str] | None = None,
    p_mods: dict[int, str] | None = None,
) -> tuple[float, float]:
    """(G_pullup, G_pulldown) of a cell for definite input values.

    ``n_mods``/``p_mods`` force individual devices: ``"on"`` (conducts
    regardless of gate), ``"off"``/``"absent"`` (never conducts).  Inputs
    containing X must be enumerated by the caller.
    """
    n_mods = n_mods or {}
    p_mods = p_mods or {}
    n = len(inputs)
    n_states = [_n_conducting(v, n_mods.get(i)) for i, v in enumerate(inputs)]
    p_states = [_p_conducting(v, p_mods.get(i)) for i, v in enumerate(inputs)]
    if any(s is None for s in n_states + p_states):
        raise ValueError("X inputs must be enumerated before computing strengths")

    if gate_type is GateType.NOT:
        g_up = P_STRENGTH if p_states[0] else 0.0
        g_down = N_STRENGTH if n_states[0] else 0.0
    elif gate_type is GateType.NAND:
        g_down = N_STRENGTH / n if all(n_states) else 0.0
        g_up = P_STRENGTH * sum(p_states)
    elif gate_type is GateType.NOR:
        g_up = P_STRENGTH / n if all(p_states) else 0.0
        g_down = N_STRENGTH * sum(n_states)
    else:
        raise ValueError(f"no physical cell family for {gate_type!r}")
    return g_up, g_down


def divider_value(pairs: list[tuple[float, float]]) -> int:
    """Resolve a node driven by several (conductance, rail_value) pairs.

    Returns 0, 1, or X by the resistive-divider voltage and the CMOS
    thresholds.  An exactly balanced fight (v = 1/2, e.g. two equal tester
    drivers bridged) resolves to 0 — the classic wired-AND semantics of CMOS
    bridging faults, where the falling side wins at the downstream gate
    threshold.  A node with no drive at all is X (the caller decides whether
    Z/memory semantics apply instead).
    """
    total = sum(g for g, _ in pairs)
    if total <= 0:
        return X
    v = sum(g * val for g, val in pairs) / total
    if v == 0.5:
        return 0
    if v >= V_HIGH:
        return 1
    if v <= V_LOW:
        return 0
    return X


def resolve_contention(g_up: float, g_down: float) -> int:
    """Node value when pulled both ways (or one way, or neither = X)."""
    return divider_value([(g_up, 1.0), (g_down, 0.0)])


@lru_cache(maxsize=65536)
def _tap_cached(
    gate_type: GateType,
    inputs: tuple[int, ...],
    tap_index: int,
    tap_value: float,
    tap_strength: float,
    n_mods: tuple[tuple[int, str], ...],
    p_mods: tuple[tuple[int, str], ...],
) -> tuple[int, int]:
    return _solve_with_tap_impl(
        gate_type, inputs, tap_index, tap_value, tap_strength,
        dict(n_mods), dict(p_mods),
    )


def solve_with_tap(
    gate_type: GateType,
    inputs: tuple[int, ...],
    tap_index: int,
    tap_value: float,
    tap_strength: float,
    n_mods: dict[int, str] | None = None,
    p_mods: dict[int, str] | None = None,
) -> tuple[int, int]:
    """Solve a cell with an external tie at one node.

    ``tap_index`` selects the node: 0 = output, ``i >= 1`` = the i-th
    internal chain node (NAND: NMOS chain node between devices i-1 and i;
    NOR: PMOS chain node).  The tap ties that node toward ``tap_value``
    (0.0/1.0) with conductance ``tap_strength``.

    Returns ``(output_value, tap_node_value)`` as ternary logic levels.
    Results are memoised — the fault simulator calls this per vector with a
    small set of distinct arguments.
    """
    return _tap_cached(
        gate_type,
        tuple(inputs),
        tap_index,
        float(tap_value),
        float(tap_strength),
        tuple(sorted((n_mods or {}).items())),
        tuple(sorted((p_mods or {}).items())),
    )


def _solve_with_tap_impl(
    gate_type: GateType,
    inputs: tuple[int, ...],
    tap_index: int,
    tap_value: float,
    tap_strength: float,
    n_mods: dict[int, str],
    p_mods: dict[int, str],
) -> tuple[int, int]:
    n = len(inputs)
    n_states = [_n_conducting(v, n_mods.get(i)) for i, v in enumerate(inputs)]
    p_states = [_p_conducting(v, p_mods.get(i)) for i, v in enumerate(inputs)]
    if any(s is None for s in n_states + p_states):
        raise ValueError("X inputs must be enumerated before solving")

    # Unknown nodes: 0 = OUT, 1..n-1 = chain internals (series side).
    n_nodes = max(1, n)  # OUT plus n-1 chain nodes
    # edges: (node_a, node_b, g) where -1 = GND rail, -2 = VDD rail.
    GND_N, VDD_N = -1, -2
    edges: list[tuple[int, int, float]] = []

    def chain_node(i: int, rail: int) -> int:
        """Node index for chain position i (0 = rail end, n = OUT)."""
        if i == 0:
            return rail
        if i == n:
            return 0
        return i  # internal node i

    if gate_type is GateType.NOT:
        if n_states[0]:
            edges.append((0, GND_N, N_STRENGTH))
        if p_states[0]:
            edges.append((0, VDD_N, P_STRENGTH))
    elif gate_type is GateType.NAND:
        for i in range(n):  # NMOS series chain from GND to OUT
            if n_states[i]:
                edges.append((chain_node(i, GND_N), chain_node(i + 1, GND_N), N_STRENGTH))
        for i in range(n):  # PMOS parallel to VDD
            if p_states[i]:
                edges.append((0, VDD_N, P_STRENGTH))
    else:  # NOR
        for i in range(n):  # PMOS series chain from VDD to OUT
            if p_states[i]:
                edges.append((chain_node(i, VDD_N), chain_node(i + 1, VDD_N), P_STRENGTH))
        for i in range(n):  # NMOS parallel to GND
            if n_states[i]:
                edges.append((0, GND_N, N_STRENGTH))

    # External tap as an edge to a virtual rail at tap_value.
    tap_node = 0 if tap_index == 0 else tap_index
    TAP_N = -3
    edges.append((tap_node, TAP_N, tap_strength))
    rail_voltage = {GND_N: 0.0, VDD_N: 1.0, TAP_N: tap_value}

    laplacian = np.zeros((n_nodes, n_nodes))
    rhs = np.zeros(n_nodes)
    for a, b, g in edges:
        for u, v in ((a, b), (b, a)):
            if u < 0:
                continue
            laplacian[u, u] += g
            if v >= 0:
                laplacian[u, v] -= g
            else:
                rhs[u] += g * rail_voltage[v]

    voltages = np.full(n_nodes, np.nan)
    active = [i for i in range(n_nodes) if laplacian[i, i] > 0]
    if active:
        sub = laplacian[np.ix_(active, active)]
        try:
            sol = np.linalg.solve(sub, rhs[active])
        except np.linalg.LinAlgError:
            sol = np.linalg.lstsq(sub, rhs[active], rcond=None)[0]
        for idx, node in enumerate(active):
            voltages[node] = sol[idx]

    def to_level(v: float) -> int:
        if np.isnan(v):
            return X
        if v >= V_HIGH:
            return 1
        if v <= V_LOW:
            return 0
        return X

    return to_level(voltages[0]), to_level(voltages[tap_node])
