"""Coverage bookkeeping for realistic (layout-extracted) faults.

Builds the paper's three per-vector curves from a switch-level simulation:

* ``theta(k)`` — the **weighted** realistic fault coverage (eq. 6): detected
  weight over total weight after ``k`` vectors;
* ``Gamma(k)`` — the same fault set counted with **equal likelihood** (the
  paper's non-weighted control);
* the companion defect-level series ``DL(theta(k)) = 1 - Y**(1 - theta(k))``
  lives in :mod:`repro.core.defect_level` and is assembled by the experiment
  pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.defects.fault_types import (
    FaultList,
    RealisticFault,
    TransistorGateOpen,
    TransistorStuckOpen,
)
from repro.switchsim.simulator import SwitchSimResult

__all__ = ["CoverageCurves", "build_coverage", "delay_screen_detections"]


@dataclass
class CoverageCurves:
    """theta(k) and Gamma(k) evaluated over a vector sequence."""

    n_patterns: int
    total_weight: float
    #: Per-fault (weight, first-detection-or-None) pairs.
    records: list[tuple[float, int | None]]

    def theta_at(self, k: int) -> float:
        """Weighted realistic coverage after k vectors (eq. 6)."""
        if self.total_weight <= 0:
            return 1.0
        hit = sum(w for w, first in self.records if first is not None and first <= k)
        return hit / self.total_weight

    def gamma_at(self, k: int) -> float:
        """Unweighted realistic coverage after k vectors."""
        if not self.records:
            return 1.0
        hit = sum(1 for _, first in self.records if first is not None and first <= k)
        return hit / len(self.records)

    @property
    def theta_max(self) -> float:
        """Final weighted coverage — the saturation level of theta(k)."""
        return self.theta_at(self.n_patterns)

    @property
    def gamma_max(self) -> float:
        """Final unweighted coverage."""
        return self.gamma_at(self.n_patterns)

    def curve(self, ks: list[int] | None = None) -> list[tuple[int, float, float]]:
        """(k, theta(k), Gamma(k)) rows at the requested vector counts."""
        if ks is None:
            ks = sorted(
                {first for _, first in self.records if first is not None}
                | {self.n_patterns}
            )
        return [(k, self.theta_at(k), self.gamma_at(k)) for k in ks]


def delay_screen_detections(
    faults: FaultList | list[RealisticFault],
    design,
    patterns,
) -> dict[int, int]:
    """First-detection indices of a two-pattern **delay screen**.

    A stuck-open (or floating-gate) device turns its cell into a gross
    gate-delay fault on the cell output; a transition test on that net
    catches it.  Returns ``id(fault) -> first capture vector`` for the
    faults the screen reaches — combine with a voltage map for the paper's
    "delay tests must become part of the production routine" analysis
    (see ``examples/zero_defect_strategy.py``).
    """
    from repro.simulation.transition import (
        TransitionFault,
        TransitionFaultSimulator,
    )

    simulator = TransitionFaultSimulator(design.mapped)
    result = simulator.run(patterns)
    output_of = {g.name: g.output for g in design.mapped.gates}

    detections: dict[int, int] = {}
    for fault in faults:
        if isinstance(fault, TransistorStuckOpen):
            devices = fault.transistors
        elif isinstance(fault, TransistorGateOpen):
            devices = (fault.transistor,)
        else:
            continue
        firsts = []
        for device in devices:
            out = output_of.get(device.rsplit(".", 1)[0])
            if out is None:
                continue
            for slow_to in (0, 1):
                k = result.first_detection.get(TransitionFault(out, slow_to))
                if k is not None:
                    firsts.append(k)
        if firsts:
            detections[id(fault)] = min(firsts)
    return detections


def build_coverage(
    faults: FaultList | list[RealisticFault],
    result: SwitchSimResult,
    technique: str = "voltage",
) -> CoverageCurves:
    """Assemble coverage curves from a simulation result.

    ``technique`` selects the detection map:

    * ``"voltage"`` — potential voltage detection (an X reaching a sensitised
      output counts), the convention of the paper's era of switch-level
      simulators and the pipeline default;
    * ``"voltage-strict"`` — only guaranteed logic flips count;
    * ``"iddq"`` — quiescent-current testing;
    * ``"either"`` — voltage or IDDQ, whichever comes first.
    """
    fault_list = list(faults)
    records: list[tuple[float, int | None]] = []
    for fault in fault_list:
        k_v = result.detected_potential(fault)
        k_s = result.detected_voltage(fault)
        k_i = result.detected_iddq(fault)
        if technique == "voltage":
            first = k_v
        elif technique == "voltage-strict":
            first = k_s
        elif technique == "iddq":
            first = k_i
        elif technique == "either":
            candidates = [k for k in (k_v, k_i) if k is not None]
            first = min(candidates) if candidates else None
        else:
            raise ValueError(f"unknown technique {technique!r}")
        records.append((fault.weight, first))
    return CoverageCurves(
        n_patterns=result.n_patterns,
        total_weight=sum(w for w, _ in records),
        records=records,
    )
