"""Switch-level fault simulation of layout-extracted realistic faults."""

from repro.switchsim.coverage import CoverageCurves, build_coverage
from repro.switchsim.simulator import (
    Detection,
    SwitchLevelFaultSimulator,
    SwitchSimResult,
)
from repro.switchsim.strengths import (
    N_STRENGTH,
    P_STRENGTH,
    PI_STRENGTH,
    SUPPLY_STRENGTH,
    cell_conductances,
    divider_value,
    resolve_contention,
    solve_with_tap,
)

__all__ = [
    "CoverageCurves",
    "Detection",
    "N_STRENGTH",
    "P_STRENGTH",
    "PI_STRENGTH",
    "SUPPLY_STRENGTH",
    "SwitchLevelFaultSimulator",
    "SwitchSimResult",
    "build_coverage",
    "cell_conductances",
    "divider_value",
    "resolve_contention",
    "solve_with_tap",
]
