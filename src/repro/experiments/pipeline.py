"""The paper's end-to-end evaluation pipeline.

One run reproduces the experimental setup of section 3:

1. take a benchmark circuit (c432-class by default);
2. generate the stuck-at test sequence — a random prefix (>80 % coverage)
   topped off by deterministic (PODEM) vectors, exactly the paper's recipe;
3. gate-level fault simulation of the sequence -> ``T(k)`` over the
   equivalence-collapsed, provably-irredundant stuck-at universe (the paper
   neglects redundant faults so that T -> 1);
4. build the standard-cell layout, extract weighted realistic faults, and
   rescale the weights so the predicted yield is Y = 0.75 (the paper's
   yield-scaling step);
5. switch-level fault simulation of the same sequence -> ``theta(k)``
   (weighted) and ``Gamma(k)`` (unweighted);
6. assemble ``DL(theta(k))`` (eq. 3) and fit eq. 11's ``(R, theta_max)`` to
   the ``(T(k), DL(theta(k)))`` points.

Results are memoised per configuration: every figure bench shares one run.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Callable

from repro import obs
from repro.analysis import AnalysisResult, analyze_circuit
from repro.atpg.podem import generate_deterministic_tests
from repro.atpg.random_atpg import generate_random_tests
from repro.circuit.iscas import load_benchmark
from repro.circuit.netlist import Circuit
from repro.core.defect_level import weighted_defect_level
from repro.core.fitting import SousaFit, fit_sousa_model
from repro.defects.extraction import extract_faults
from repro.defects.fault_types import FaultList
from repro.defects.statistics import DefectStatistics
from repro.layout.design import LayoutDesign, build_layout
from repro.obs import attribution
from repro.obs.events import CheckpointEvent, StageEvent
from repro.resilience import chaos
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.errors import CheckpointCorruptError
from repro.resilience.retry import DEFAULT_RETRY_POLICY
from repro.simulation.engines import ENGINE_NAMES
from repro.simulation.fault_sim import FaultSimResult
from repro.simulation.faults import StuckAtFault, collapse_faults
from repro.simulation.parallel import ParallelFaultSimulator
from repro.switchsim.coverage import CoverageCurves, build_coverage
from repro.switchsim.simulator import SwitchLevelFaultSimulator, SwitchSimResult

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment", "cache_info"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one pipeline run (hashable: results are memoised)."""

    benchmark: str = "c432"
    target_yield: float = 0.75
    random_coverage_target: float = 0.90
    max_random_patterns: int = 768
    backtrack_limit: int = 2000
    seed: int = 1234
    statistics: DefectStatistics | None = None
    detection: str = "voltage"
    #: When False, the paper's deterministic (PODEM) top-off is skipped and
    #: only the random prefix is applied (vector-source ablation).
    deterministic_topoff: bool = True
    #: Packed-word width of the fault-simulation engine (None = engine
    #: default).  Simulation results are bit-exact across widths; this only
    #: moves wall-clock time.
    word_width: int | None = None
    #: Worker-process cap for the stuck-at fault-simulation stage (None =
    #: machine CPU count; the engine still runs serially below its
    #: work crossover).
    fault_sim_workers: int | None = None
    #: Fault-simulation engine for the stuck-at stage: "python" (wide-word
    #: reference), "numpy" (uint64 bitslice kernel) or "auto" (default:
    #: numpy when its platform preflight passes, recorded in the manifest).
    #: Engines are bit-exact against each other; this only moves wall-clock
    #: time.  See :mod:`repro.simulation.engines`.
    engine: str = "auto"
    #: When True (default), the static-analysis pass runs before ATPG:
    #: provably-untestable faults are excluded from the coverage denominator
    #: up front (alongside PODEM-proven redundancies) and SCOAP measures are
    #: shared with the PODEM backtrace.  False is the ablation switch.
    static_analysis: bool = True
    #: When True (default, and only meaningful with ``static_analysis``), the
    #: proof-carrying redundancy prover runs on top of the implication
    #: screen: every extra fault it removes from the denominator carries a
    #: certificate validated by the independent checker, and its static
    #: learned implications are handed to the PODEM search.  False falls
    #: back to the bare screen (ablation switch).
    prove_redundancy: bool = True
    #: Recursive-learning depth bound for the redundancy prover.
    prover_depth: int = 2
    #: Total pool attempts per fault chunk before the serial salvage phase
    #: (None = the default retry policy's budget).  Affects only resilience
    #: behaviour, never results; hashed like every other knob so manifests
    #: and campaign job ids record it.
    fault_sim_retries: int | None = None
    #: Per-chunk deadline in seconds for the parallel fault-simulation
    #: stage (None = no deadline).  A chunk past its deadline is retried
    #: in a fresh pool and, failing that, salvaged serially.
    chunk_timeout: float | None = None

    def __post_init__(self) -> None:
        """Reject invalid knobs at construction, not mid-pipeline."""
        if not 0.0 < self.target_yield <= 1.0:
            raise ValueError(
                f"target_yield must be in (0, 1], got {self.target_yield}"
            )
        if not 0.0 < self.random_coverage_target <= 1.0:
            raise ValueError(
                "random_coverage_target must be in (0, 1], got "
                f"{self.random_coverage_target}"
            )
        if self.max_random_patterns < 0:
            raise ValueError(
                "max_random_patterns must be non-negative, got "
                f"{self.max_random_patterns}"
            )
        if self.backtrack_limit < 0:
            raise ValueError(
                f"backtrack_limit must be non-negative, got {self.backtrack_limit}"
            )
        if self.word_width is not None and self.word_width < 1:
            raise ValueError(f"word_width must be >= 1, got {self.word_width}")
        if self.fault_sim_workers is not None and self.fault_sim_workers < 1:
            raise ValueError(
                f"fault_sim_workers must be >= 1, got {self.fault_sim_workers}"
            )
        if self.engine not in ENGINE_NAMES:
            known = ", ".join(ENGINE_NAMES)
            raise ValueError(
                f"engine must be one of {known}; got {self.engine!r}"
            )
        if (
            self.engine == "numpy"
            and self.word_width is not None
            and (self.word_width < 64 or self.word_width % 64)
        ):
            raise ValueError(
                "engine 'numpy' needs word_width to be a positive multiple "
                f"of 64 (whole uint64 words), got {self.word_width}"
            )
        if self.prover_depth < 0:
            raise ValueError(
                f"prover_depth must be non-negative, got {self.prover_depth}"
            )
        if self.fault_sim_retries is not None and self.fault_sim_retries < 1:
            raise ValueError(
                f"fault_sim_retries must be >= 1, got {self.fault_sim_retries}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )

    def __hash__(self) -> int:  # DefectStatistics carries dicts
        stats_key = (
            None
            if self.statistics is None
            else tuple(sorted((m.value, d) for m, d in self.statistics.densities.items()))
            + (self.statistics.size.x0, self.statistics.size.x_max)
        )
        return hash(
            (
                self.benchmark,
                self.target_yield,
                self.random_coverage_target,
                self.max_random_patterns,
                self.backtrack_limit,
                self.seed,
                stats_key,
                self.detection,
                self.deterministic_topoff,
                self.word_width,
                self.fault_sim_workers,
                self.engine,
                self.static_analysis,
                self.prove_redundancy,
                self.prover_depth,
                self.fault_sim_retries,
                self.chunk_timeout,
            )
        )


@dataclass
class ExperimentResult:
    """Everything the figure reproductions need from one pipeline run."""

    config: ExperimentConfig
    circuit: Circuit
    design: LayoutDesign
    test_patterns: list[list[int]]
    n_random: int
    stuck_faults: list[StuckAtFault]
    redundant_faults: list[StuckAtFault]
    static_untestable: list[StuckAtFault]
    analysis: AnalysisResult | None
    stuck_result: FaultSimResult
    realistic_faults: FaultList
    switch_result: SwitchSimResult
    coverage: CoverageCurves
    sample_ks: list[int] = field(default_factory=list)
    #: Descriptor of the fault-simulation engine that produced
    #: ``stuck_result``: name ("serial"/"parallel"), word width, workers,
    #: degradation state (see ``ParallelFaultSimulator.engine_info``).
    engine: dict[str, object] = field(default_factory=dict)
    #: Stage names restored from checkpoints (empty without a checkpoint dir).
    stages_restored: list[str] = field(default_factory=list)
    #: Stage names computed (and checkpointed, when a store is attached).
    stages_recomputed: list[str] = field(default_factory=list)
    #: PODEM search statistics from the deterministic top-off: total
    #: backtracks plus learned-implication prune/conflict counts (empty when
    #: the top-off was skipped).
    podem_stats: dict[str, int] = field(default_factory=dict)

    def resilience_info(self) -> dict[str, object]:
        """Restore/recompute and engine-degradation facts, for manifests."""
        return {
            "stages_restored": list(self.stages_restored),
            "stages_recomputed": list(self.stages_recomputed),
            "engine_degraded": bool(self.engine.get("degraded", False)),
            "degraded_reason": self.engine.get("degraded_reason"),
            "chunks_salvaged": self.engine.get("chunks_salvaged", 0),
            "chunk_retries": self.engine.get("chunk_retries", 0),
        }

    # -- per-k series ------------------------------------------------------
    def T_at(self, k: int) -> float:
        """Stuck-at coverage over the irredundant collapsed universe."""
        return self.stuck_result.coverage_at(k)

    def theta_at(self, k: int) -> float:
        """Weighted realistic coverage (eq. 6)."""
        return self.coverage.theta_at(k)

    def gamma_at(self, k: int) -> float:
        """Unweighted realistic coverage."""
        return self.coverage.gamma_at(k)

    def dl_at(self, k: int) -> float:
        """'Actual' defect level DL(theta(k)) via eq. 3."""
        return weighted_defect_level(self.config.target_yield, self.theta_at(k))

    def series(self) -> list[tuple[int, float, float, float, float]]:
        """(k, T, theta, Gamma, DL) rows at the sample vector counts."""
        return [
            (k, self.T_at(k), self.theta_at(k), self.gamma_at(k), self.dl_at(k))
            for k in self.sample_ks
        ]

    def fit(self) -> SousaFit:
        """Fit eq. 11's (R, theta_max) to the (T(k), DL(theta(k))) points."""
        points = [
            (self.T_at(k), self.dl_at(k))
            for k in self.sample_ks
            if self.T_at(k) > 0
        ]
        coverages = [p[0] for p in points]
        dls = [p[1] for p in points]
        return fit_sousa_model(coverages, dls, self.config.target_yield)

    @property
    def theta_max(self) -> float:
        """Saturation value of the measured theta(k)."""
        return self.coverage.theta_max

    @property
    def final_T(self) -> float:
        """Final stuck-at coverage of the complete sequence."""
        return self.stuck_result.coverage


def _sample_ks(n_patterns: int) -> list[int]:
    ks: list[int] = []
    k = 1
    while k < n_patterns:
        ks.append(k)
        k = max(k + 1, int(k * 1.4))
    ks.append(n_patterns)
    return ks


def _make_stage_runner(
    store: CheckpointStore | None,
    resume: bool,
    restored: list[str],
    recomputed: list[str],
) -> Callable:
    """Build the run-one-stage closure used by :func:`_run_pipeline`.

    A stage either restores its artifact from the checkpoint store (resume
    mode, verified payload present and decodable against the current run) or
    computes it, persists it, and passes the ``pipeline.stage`` chaos point —
    the hook tests and the CI chaos-smoke job use to simulate a crash
    *between* stages.
    """

    def run_stage(
        name: str,
        compute: Callable[[], object],
        encode: Callable | None = None,
        decode: Callable | None = None,
    ) -> object:
        # Cost attribution times the whole restore-or-compute body: a
        # checkpoint restore is work this stage cost the run, same as a
        # recompute.
        with attribution.stage(name):
            return stage_body(name, compute, encode, decode)

    def stage_body(
        name: str,
        compute: Callable[[], object],
        encode: Callable | None = None,
        decode: Callable | None = None,
    ) -> object:
        emit_events = obs.events_enabled()
        stage_t0 = time.perf_counter()
        if emit_events:
            obs.emit(StageEvent(stage=name, status="start"))
        if store is not None and resume:
            payload = store.load(name)
            if payload is not None:
                try:
                    value = decode(payload) if decode is not None else payload
                except Exception as exc:
                    # The file verified but its content no longer matches
                    # this run (e.g. artifact shape drift): same policy as
                    # corruption — strict raises, tolerant recomputes.
                    if store.strict:
                        raise CheckpointCorruptError(
                            f"checkpoint for stage {name!r} does not match "
                            f"this run: {exc}"
                        ) from exc
                    warnings.warn(
                        f"checkpoint for stage {name!r} does not match this "
                        f"run ({exc}); recomputing",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    obs.inc("resilience.checkpoints_corrupt")
                    if emit_events:
                        obs.emit(
                            CheckpointEvent(
                                stage=name,
                                action="corrupt",
                                path=str(store.path_for(name)),
                            )
                        )
                else:
                    restored.append(name)
                    obs.inc("resilience.stages_restored")
                    if emit_events:
                        obs.emit(
                            CheckpointEvent(
                                stage=name,
                                action="restore",
                                path=str(store.path_for(name)),
                            )
                        )
                        obs.emit(
                            StageEvent(
                                stage=name,
                                status="end",
                                wall_s=time.perf_counter() - stage_t0,
                                data={"source": "checkpoint"},
                            )
                        )
                    return value
        value = compute()
        if store is not None:
            saved_path = store.save(
                name, encode(value) if encode is not None else value
            )
            if emit_events:
                obs.emit(
                    CheckpointEvent(
                        stage=name, action="save", path=str(saved_path)
                    )
                )
        recomputed.append(name)
        obs.inc("resilience.stages_recomputed")
        if emit_events:
            obs.emit(
                StageEvent(
                    stage=name,
                    status="end",
                    wall_s=time.perf_counter() - stage_t0,
                    data={"source": "computed"},
                )
            )
        chaos.maybe_inject("pipeline.stage", key=name)
        return value

    return run_stage


def _run_pipeline(
    config: ExperimentConfig,
    store: CheckpointStore | None = None,
    resume: bool = False,
) -> ExperimentResult:
    restored: list[str] = []
    recomputed: list[str] = []
    run_stage = _make_stage_runner(store, resume, restored, recomputed)

    pipeline_t0 = time.perf_counter()
    if obs.events_enabled():
        obs.emit(
            StageEvent(
                stage="pipeline",
                status="start",
                data={"benchmark": config.benchmark, "seed": config.seed},
            )
        )
    with obs.span(
        "pipeline.run", benchmark=config.benchmark, seed=config.seed
    ):
        with attribution.stage("load_benchmark"), obs.span(
            "pipeline.load_benchmark", benchmark=config.benchmark
        ):
            circuit = load_benchmark(config.benchmark)

        # --- stuck-at universe and test sequence (paper section 3) ---
        with attribution.stage("collapse_faults"), obs.span(
            "pipeline.collapse_faults"
        ):
            collapsed = collapse_faults(circuit)

        # Static analysis: provably-untestable faults leave the coverage
        # denominator before any vector is generated — the same "redundant
        # faults can be neglected" assumption the paper makes, applied where
        # redundancy is provable without search.  SCOAP measures are reused
        # by the PODEM backtrace.  Deterministic and cheap relative to the
        # simulation stages, it is recomputed rather than checkpointed.
        analysis: AnalysisResult | None = None
        static_untestable: list[StuckAtFault] = []
        screened = collapsed
        if config.static_analysis:
            with attribution.stage("static_analysis"):
                analysis = analyze_circuit(
                    circuit,
                    faults=collapsed,
                    prove=config.prove_redundancy,
                    prover_depth=config.prover_depth,
                )
                static_untestable = analysis.untestable_faults()
                screened = analysis.screen(collapsed)
        learned = (
            analysis.prover.learned
            if analysis is not None and analysis.prover is not None
            else None
        )

        def compute_atpg() -> dict[str, object]:
            random_result = generate_random_tests(
                circuit,
                screened,
                target_coverage=config.random_coverage_target,
                max_patterns=config.max_random_patterns,
                seed=config.seed,
                word_width=config.word_width,
            )
            if config.deterministic_topoff:
                deterministic = generate_deterministic_tests(
                    circuit,
                    random_result.undetected,
                    backtrack_limit=config.backtrack_limit,
                    untestable=static_untestable,
                    scoap=analysis.scoap if analysis is not None else None,
                    learned=learned,
                )
                # The paper assumes "redundant faults can be neglected, so
                # T(k) -> 1".  Proven-redundant faults are excluded from the
                # coverage denominator; backtrack-aborted faults
                # (overwhelmingly redundant too at this limit — see
                # tests/test_podem.py) are excluded alongside, reported.
                redundant = list(deterministic.redundant) + list(
                    deterministic.aborted
                )
                deterministic_patterns = list(deterministic.test_set.patterns)
                podem_stats = {
                    "backtracks": deterministic.backtracks,
                    "learned_prunes": deterministic.learned_prunes,
                    "learned_conflicts": deterministic.learned_conflicts,
                }
            else:
                redundant = []
                deterministic_patterns = []
                podem_stats = {}
            excluded = set(redundant)
            return {
                "patterns": list(random_result.test_set.patterns)
                + deterministic_patterns,
                "n_random": len(random_result.test_set),
                "redundant": redundant,
                "testable": [f for f in screened if f not in excluded],
                "podem_stats": podem_stats,
            }

        atpg = run_stage("atpg", compute_atpg)
        patterns: list[list[int]] = atpg["patterns"]
        n_random: int = atpg["n_random"]
        redundant: list[StuckAtFault] = atpg["redundant"]
        testable: list[StuckAtFault] = atpg["testable"]
        # Checkpoints written before the podem_stats key existed decode to a
        # dict without it; degrade to empty stats rather than KeyError.
        podem_stats: dict[str, int] = atpg.get("podem_stats", {})
        obs.set_gauge("pipeline.n_patterns", len(patterns))
        obs.set_gauge("pipeline.n_stuck_faults", len(testable))
        obs.set_gauge("pipeline.n_untestable_static", len(static_untestable))
        if analysis is not None and analysis.prover is not None:
            obs.set_gauge(
                "pipeline.n_proved", len(analysis.prover.proved)
            )

        def compute_stuck() -> dict[str, object]:
            with obs.span("pipeline.stuck_fault_sim", n_patterns=len(patterns)):
                retry_policy = (
                    None
                    if config.fault_sim_retries is None
                    else replace(
                        DEFAULT_RETRY_POLICY,
                        max_attempts=config.fault_sim_retries,
                    )
                )
                stuck_sim = ParallelFaultSimulator(
                    circuit,
                    width=config.word_width,
                    max_workers=config.fault_sim_workers,
                    retry=retry_policy,
                    chunk_timeout=config.chunk_timeout,
                    engine=config.engine,
                )
                result = stuck_sim.run(patterns, faults=testable)
            return {"result": result, "engine": stuck_sim.engine_info()}

        stuck = run_stage("stuck_sim", compute_stuck)
        stuck_result: FaultSimResult = stuck["result"]
        engine: dict[str, object] = stuck["engine"]

        # --- layout, extraction, yield scaling ---
        with attribution.stage("build_layout"), obs.span(
            "pipeline.build_layout"
        ):
            design = build_layout(circuit)

        def compute_extraction() -> FaultList:
            statistics = config.statistics or DefectStatistics()
            return extract_faults(design, statistics).scaled_to_yield(
                config.target_yield
            )

        faults = run_stage("extraction", compute_extraction)
        if obs.is_enabled():
            for fault in faults:
                obs.observe("weights.scaled", fault.weight)

        # --- switch-level simulation of the same sequence ---
        def compute_switch() -> SwitchSimResult:
            with obs.span("pipeline.switch_sim_setup"):
                switch = SwitchLevelFaultSimulator(design, patterns)
            return switch.run(faults.faults)

        switch_result = run_stage(
            "switch_sim",
            compute_switch,
            encode=_encode_switch_result,
            decode=lambda payload: _decode_switch_result(payload, faults.faults),
        )
        with attribution.stage("build_coverage"):
            coverage = build_coverage(
                faults, switch_result, technique=config.detection
            )
        obs.set_gauge("pipeline.theta_max", coverage.theta_max)
        obs.set_gauge("pipeline.final_T", stuck_result.coverage)

    if obs.events_enabled():
        obs.emit(
            StageEvent(
                stage="pipeline",
                status="end",
                wall_s=time.perf_counter() - pipeline_t0,
                data={
                    "benchmark": config.benchmark,
                    "coverage": round(stuck_result.coverage, 4),
                    "n_patterns": len(patterns),
                },
            )
        )
    return ExperimentResult(
        config=config,
        circuit=circuit,
        design=design,
        test_patterns=patterns,
        n_random=n_random,
        stuck_faults=testable,
        redundant_faults=redundant,
        static_untestable=static_untestable,
        analysis=analysis,
        stuck_result=stuck_result,
        realistic_faults=faults,
        switch_result=switch_result,
        coverage=coverage,
        sample_ks=_sample_ks(len(patterns)),
        engine=engine,
        stages_restored=restored,
        stages_recomputed=recomputed,
        podem_stats=podem_stats,
    )


def _encode_switch_result(result: SwitchSimResult) -> dict[str, object]:
    """Re-key a switch-sim result from ``id(fault)`` to fault-list indices.

    ``SwitchSimResult`` keys detections by object identity, which pickling
    cannot preserve; the extraction order is deterministic, so indices into
    ``result.faults`` are a stable checkpoint representation.
    """
    index_of = {id(fault): i for i, fault in enumerate(result.faults)}
    return {
        "n_faults": len(result.faults),
        "n_patterns": result.n_patterns,
        "first_detection": {
            index_of[key]: k for key, k in result.first_detection.items()
        },
        "first_detection_potential": {
            index_of[key]: k
            for key, k in result.first_detection_potential.items()
        },
        "first_detection_iddq": {
            index_of[key]: k for key, k in result.first_detection_iddq.items()
        },
        "iddq_peak": {index_of[key]: v for key, v in result.iddq_peak.items()},
    }


def _decode_switch_result(
    payload: dict[str, object], faults: list
) -> SwitchSimResult:
    """Rebuild a switch-sim result against the current extraction's faults."""
    if payload["n_faults"] != len(faults):
        raise ValueError(
            f"checkpoint covers {payload['n_faults']} realistic faults, the "
            f"current extraction has {len(faults)}"
        )

    def rekey(name: str) -> dict[int, object]:
        return {id(faults[i]): v for i, v in payload[name].items()}

    return SwitchSimResult(
        faults=list(faults),
        first_detection=rekey("first_detection"),
        first_detection_potential=rekey("first_detection_potential"),
        first_detection_iddq=rekey("first_detection_iddq"),
        iddq_peak=rekey("iddq_peak"),
        n_patterns=payload["n_patterns"],
    )


@lru_cache(maxsize=8)
def _run_cached(config: ExperimentConfig) -> ExperimentResult:
    return _run_pipeline(config)


def run_experiment(
    config: ExperimentConfig | None = None,
    *,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    strict_checkpoints: bool = False,
) -> ExperimentResult:
    """Run (or fetch the memoised) end-to-end pipeline for ``config``.

    Without ``checkpoint_dir`` the run is memoised in-process per
    configuration, reported through the ``pipeline.cache_hit`` /
    ``pipeline.cache_miss`` counters (and observable without enabling
    metrics via :func:`cache_info` deltas).

    With ``checkpoint_dir``, every completed stage (test-pattern generation,
    stuck-at fault simulation, realistic-fault extraction, switch-level
    simulation) is persisted under ``checkpoint_dir/<config hash>/`` as it
    completes; with ``resume=True`` the run restores any stage already
    checkpointed by an identical configuration instead of recomputing it —
    the recovery path for a run killed mid-pipeline.
    ``ExperimentResult.stages_restored`` / ``stages_recomputed`` record which
    path each stage took.  ``strict_checkpoints`` makes a corrupt or
    mismatched checkpoint raise
    :class:`~repro.resilience.errors.CheckpointCorruptError` instead of
    recomputing with a warning.
    """
    config = config or ExperimentConfig()
    if checkpoint_dir is None:
        hits_before = _run_cached.cache_info().hits
        result = _run_cached(config)
        if _run_cached.cache_info().hits > hits_before:
            obs.inc("pipeline.cache_hit")
        else:
            obs.inc("pipeline.cache_miss")
        return result
    store = CheckpointStore(checkpoint_dir, config, strict=strict_checkpoints)
    obs.inc("pipeline.cache_miss")
    return _run_pipeline(config, store=store, resume=resume)


def cache_info():
    """The memoisation statistics of the pipeline (``functools`` CacheInfo)."""
    return _run_cached.cache_info()


def scaled_weight_check(result: ExperimentResult) -> float:
    """Sanity: the scaled fault list's predicted yield (should equal target)."""
    return math.exp(-result.realistic_faults.total_weight())
