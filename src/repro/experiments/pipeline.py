"""The paper's end-to-end evaluation pipeline.

One run reproduces the experimental setup of section 3:

1. take a benchmark circuit (c432-class by default);
2. generate the stuck-at test sequence — a random prefix (>80 % coverage)
   topped off by deterministic (PODEM) vectors, exactly the paper's recipe;
3. gate-level fault simulation of the sequence -> ``T(k)`` over the
   equivalence-collapsed, provably-irredundant stuck-at universe (the paper
   neglects redundant faults so that T -> 1);
4. build the standard-cell layout, extract weighted realistic faults, and
   rescale the weights so the predicted yield is Y = 0.75 (the paper's
   yield-scaling step);
5. switch-level fault simulation of the same sequence -> ``theta(k)``
   (weighted) and ``Gamma(k)`` (unweighted);
6. assemble ``DL(theta(k))`` (eq. 3) and fit eq. 11's ``(R, theta_max)`` to
   the ``(T(k), DL(theta(k)))`` points.

Results are memoised per configuration: every figure bench shares one run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro import obs
from repro.analysis import AnalysisResult, analyze_circuit
from repro.atpg.podem import generate_deterministic_tests
from repro.atpg.random_atpg import generate_random_tests
from repro.circuit.iscas import load_benchmark
from repro.circuit.netlist import Circuit
from repro.core.defect_level import weighted_defect_level
from repro.core.fitting import SousaFit, fit_sousa_model
from repro.defects.extraction import extract_faults
from repro.defects.fault_types import FaultList
from repro.defects.statistics import DefectStatistics
from repro.layout.design import LayoutDesign, build_layout
from repro.simulation.fault_sim import FaultSimResult
from repro.simulation.faults import StuckAtFault, collapse_faults
from repro.simulation.parallel import ParallelFaultSimulator
from repro.switchsim.coverage import CoverageCurves, build_coverage
from repro.switchsim.simulator import SwitchLevelFaultSimulator, SwitchSimResult

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment", "cache_info"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one pipeline run (hashable: results are memoised)."""

    benchmark: str = "c432"
    target_yield: float = 0.75
    random_coverage_target: float = 0.90
    max_random_patterns: int = 768
    backtrack_limit: int = 2000
    seed: int = 1234
    statistics: DefectStatistics | None = None
    detection: str = "voltage"
    #: When False, the paper's deterministic (PODEM) top-off is skipped and
    #: only the random prefix is applied (vector-source ablation).
    deterministic_topoff: bool = True
    #: Packed-word width of the fault-simulation engine (None = engine
    #: default).  Simulation results are bit-exact across widths; this only
    #: moves wall-clock time.
    word_width: int | None = None
    #: Worker-process cap for the stuck-at fault-simulation stage (None =
    #: machine CPU count; the engine still runs serially below its
    #: work crossover).
    fault_sim_workers: int | None = None
    #: When True (default), the static-analysis pass runs before ATPG:
    #: provably-untestable faults are excluded from the coverage denominator
    #: up front (alongside PODEM-proven redundancies) and SCOAP measures are
    #: shared with the PODEM backtrace.  False is the ablation switch.
    static_analysis: bool = True

    def __hash__(self) -> int:  # DefectStatistics carries dicts
        stats_key = (
            None
            if self.statistics is None
            else tuple(sorted((m.value, d) for m, d in self.statistics.densities.items()))
            + (self.statistics.size.x0, self.statistics.size.x_max)
        )
        return hash(
            (
                self.benchmark,
                self.target_yield,
                self.random_coverage_target,
                self.max_random_patterns,
                self.backtrack_limit,
                self.seed,
                stats_key,
                self.detection,
                self.deterministic_topoff,
                self.word_width,
                self.fault_sim_workers,
                self.static_analysis,
            )
        )


@dataclass
class ExperimentResult:
    """Everything the figure reproductions need from one pipeline run."""

    config: ExperimentConfig
    circuit: Circuit
    design: LayoutDesign
    test_patterns: list[list[int]]
    n_random: int
    stuck_faults: list[StuckAtFault]
    redundant_faults: list[StuckAtFault]
    static_untestable: list[StuckAtFault]
    analysis: AnalysisResult | None
    stuck_result: FaultSimResult
    realistic_faults: FaultList
    switch_result: SwitchSimResult
    coverage: CoverageCurves
    sample_ks: list[int] = field(default_factory=list)
    #: Descriptor of the fault-simulation engine that produced
    #: ``stuck_result``: name ("serial"/"parallel"), word width, workers.
    engine: dict[str, object] = field(default_factory=dict)

    # -- per-k series ------------------------------------------------------
    def T_at(self, k: int) -> float:
        """Stuck-at coverage over the irredundant collapsed universe."""
        return self.stuck_result.coverage_at(k)

    def theta_at(self, k: int) -> float:
        """Weighted realistic coverage (eq. 6)."""
        return self.coverage.theta_at(k)

    def gamma_at(self, k: int) -> float:
        """Unweighted realistic coverage."""
        return self.coverage.gamma_at(k)

    def dl_at(self, k: int) -> float:
        """'Actual' defect level DL(theta(k)) via eq. 3."""
        return weighted_defect_level(self.config.target_yield, self.theta_at(k))

    def series(self) -> list[tuple[int, float, float, float, float]]:
        """(k, T, theta, Gamma, DL) rows at the sample vector counts."""
        return [
            (k, self.T_at(k), self.theta_at(k), self.gamma_at(k), self.dl_at(k))
            for k in self.sample_ks
        ]

    def fit(self) -> SousaFit:
        """Fit eq. 11's (R, theta_max) to the (T(k), DL(theta(k))) points."""
        points = [
            (self.T_at(k), self.dl_at(k))
            for k in self.sample_ks
            if self.T_at(k) > 0
        ]
        coverages = [p[0] for p in points]
        dls = [p[1] for p in points]
        return fit_sousa_model(coverages, dls, self.config.target_yield)

    @property
    def theta_max(self) -> float:
        """Saturation value of the measured theta(k)."""
        return self.coverage.theta_max

    @property
    def final_T(self) -> float:
        """Final stuck-at coverage of the complete sequence."""
        return self.stuck_result.coverage


def _sample_ks(n_patterns: int) -> list[int]:
    ks: list[int] = []
    k = 1
    while k < n_patterns:
        ks.append(k)
        k = max(k + 1, int(k * 1.4))
    ks.append(n_patterns)
    return ks


@lru_cache(maxsize=8)
def _run_cached(config: ExperimentConfig) -> ExperimentResult:
    with obs.span(
        "pipeline.run", benchmark=config.benchmark, seed=config.seed
    ):
        with obs.span("pipeline.load_benchmark", benchmark=config.benchmark):
            circuit = load_benchmark(config.benchmark)

        # --- stuck-at universe and test sequence (paper section 3) ---
        with obs.span("pipeline.collapse_faults"):
            collapsed = collapse_faults(circuit)

        # Static analysis: provably-untestable faults leave the coverage
        # denominator before any vector is generated — the same "redundant
        # faults can be neglected" assumption the paper makes, applied where
        # redundancy is provable without search.  SCOAP measures are reused
        # by the PODEM backtrace.
        analysis: AnalysisResult | None = None
        static_untestable: list[StuckAtFault] = []
        screened = collapsed
        if config.static_analysis:
            analysis = analyze_circuit(circuit, faults=collapsed)
            static_untestable = analysis.untestable_faults()
            screened = analysis.screen(collapsed)

        random_result = generate_random_tests(
            circuit,
            screened,
            target_coverage=config.random_coverage_target,
            max_patterns=config.max_random_patterns,
            seed=config.seed,
            word_width=config.word_width,
        )
        if config.deterministic_topoff:
            deterministic = generate_deterministic_tests(
                circuit,
                random_result.undetected,
                backtrack_limit=config.backtrack_limit,
                untestable=static_untestable,
                scoap=analysis.scoap if analysis is not None else None,
            )
            # The paper assumes "redundant faults can be neglected, so T(k) -> 1".
            # Proven-redundant faults are excluded from the coverage denominator;
            # backtrack-aborted faults (overwhelmingly redundant too at this
            # limit — see tests/test_podem.py) are excluded alongside, reported.
            redundant = list(deterministic.redundant) + list(deterministic.aborted)
            deterministic_patterns = list(deterministic.test_set.patterns)
        else:
            redundant = []
            deterministic_patterns = []
        excluded = set(redundant)
        testable = [f for f in screened if f not in excluded]
        patterns = list(random_result.test_set.patterns) + deterministic_patterns
        obs.set_gauge("pipeline.n_patterns", len(patterns))
        obs.set_gauge("pipeline.n_stuck_faults", len(testable))
        obs.set_gauge("pipeline.n_untestable_static", len(static_untestable))

        with obs.span("pipeline.stuck_fault_sim", n_patterns=len(patterns)):
            if config.word_width is None:
                stuck_sim = ParallelFaultSimulator(
                    circuit, max_workers=config.fault_sim_workers
                )
            else:
                stuck_sim = ParallelFaultSimulator(
                    circuit,
                    width=config.word_width,
                    max_workers=config.fault_sim_workers,
                )
            stuck_result = stuck_sim.run(patterns, faults=testable)
        engine = stuck_sim.engine_info()

        # --- layout, extraction, yield scaling ---
        with obs.span("pipeline.build_layout"):
            design = build_layout(circuit)
        statistics = config.statistics or DefectStatistics()
        faults = extract_faults(design, statistics).scaled_to_yield(config.target_yield)
        if obs.is_enabled():
            for fault in faults:
                obs.observe("weights.scaled", fault.weight)

        # --- switch-level simulation of the same sequence ---
        with obs.span("pipeline.switch_sim_setup"):
            switch = SwitchLevelFaultSimulator(design, patterns)
        switch_result = switch.run(faults.faults)
        coverage = build_coverage(faults, switch_result, technique=config.detection)
        obs.set_gauge("pipeline.theta_max", coverage.theta_max)
        obs.set_gauge("pipeline.final_T", stuck_result.coverage)

    return ExperimentResult(
        config=config,
        circuit=circuit,
        design=design,
        test_patterns=patterns,
        n_random=len(random_result.test_set),
        stuck_faults=testable,
        redundant_faults=redundant,
        static_untestable=static_untestable,
        analysis=analysis,
        stuck_result=stuck_result,
        realistic_faults=faults,
        switch_result=switch_result,
        coverage=coverage,
        sample_ks=_sample_ks(len(patterns)),
        engine=engine,
    )


def run_experiment(config: ExperimentConfig | None = None) -> ExperimentResult:
    """Run (or fetch the memoised) end-to-end pipeline for ``config``.

    Memoisation behaviour is reported through the ``pipeline.cache_hit`` /
    ``pipeline.cache_miss`` counters (and observable without enabling
    metrics via :func:`cache_info` deltas).
    """
    hits_before = _run_cached.cache_info().hits
    result = _run_cached(config or ExperimentConfig())
    if _run_cached.cache_info().hits > hits_before:
        obs.inc("pipeline.cache_hit")
    else:
        obs.inc("pipeline.cache_miss")
    return result


def cache_info():
    """The memoisation statistics of the pipeline (``functools`` CacheInfo)."""
    return _run_cached.cache_info()


def scaled_weight_check(result: ExperimentResult) -> float:
    """Sanity: the scaled fault list's predicted yield (should equal target)."""
    return math.exp(-result.realistic_faults.total_weight())
