"""Plain-text reporting helpers for benches and examples.

Everything the paper shows as a figure is reproduced as a printed series or
ASCII chart so the benchmark harness output is self-contained.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_histogram", "format_series_plot"]


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_histogram(
    bin_edges: Sequence[float],
    counts: Sequence[int],
    label: str = "",
    width: int = 50,
) -> str:
    """Render a horizontal ASCII bar histogram."""
    if len(bin_edges) != len(counts) + 1:
        raise ValueError("need one more edge than bins")
    peak = max(counts) if counts else 1
    lines = [label] if label else []
    for i, count in enumerate(counts):
        bar = "#" * (0 if peak == 0 else round(width * count / peak))
        lines.append(
            f"[{bin_edges[i]:8.2f}, {bin_edges[i + 1]:8.2f})  {count:6d}  {bar}"
        )
    return "\n".join(lines)


def format_series_plot(
    series: dict[str, Sequence[tuple[float, float]]],
    x_label: str,
    y_label: str,
    height: int = 18,
    width: int = 70,
    log_y: bool = False,
) -> str:
    """Render several (x, y) series as one ASCII scatter chart."""
    import math

    points = [(x, y, name) for name, pts in series.items() for x, y in pts]
    if not points:
        return "(no data)"

    def ty(y: float) -> float:
        return math.log10(max(y, 1e-12)) if log_y else y

    xs = [p[0] for p in points]
    ys = [ty(p[1]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (name, pts) in enumerate(series.items()):
        mark = markers[index % len(markers)]
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((ty(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = [f"{y_label}  (rows {y_lo:.3g} .. {y_hi:.3g}"
             + (", log10 scale)" if log_y else ")")]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)
