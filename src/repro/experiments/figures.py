"""Per-figure reproductions of the paper's evaluation.

Each ``figure*``/``example*`` function returns the structured data behind the
corresponding figure or worked example, plus a ``render`` string with the
same content as an ASCII table/chart.  The benchmark harness under
``benchmarks/`` calls these and prints paper-vs-measured comparisons;
EXPERIMENTS.md records the outcomes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.coverage_growth import coverage_at, weighted_coverage_at
from repro.core.defect_level import (
    ppm,
    required_coverage,
    required_coverage_williams_brown,
    sousa_defect_level,
    williams_brown,
)
from repro.experiments.pipeline import ExperimentConfig, run_experiment
from repro.experiments.reporting import format_histogram, format_series_plot, format_table

__all__ = [
    "FigureData",
    "figure1_coverage_growth",
    "figure2_model_curves",
    "example1_required_coverage",
    "example2_residual_dl",
    "figure3_weight_histogram",
    "figure4_coverage_curves",
    "figure5_dl_vs_T",
    "figure6_dl_vs_gamma",
]


@dataclass
class FigureData:
    """Structured figure payload plus a printable rendering."""

    name: str
    series: dict[str, list[tuple[float, float]]] = field(default_factory=dict)
    scalars: dict[str, float] = field(default_factory=dict)
    render: str = ""


# ----------------------------------------------------------------------
# Analytic figures (section 2)
# ----------------------------------------------------------------------
def figure1_coverage_growth(
    s_stuck: float = math.e**3,
    s_real: float = math.e**1.5,
    theta_max: float = 0.96,
    k_max: float = 1e6,
) -> FigureData:
    """Fig. 1: T(k) and theta(k) growth for the paper's example parameters.

    Paper parameters: ``s_T = e^3``, ``s_theta = e^(3/2)``, theta_max 0.96 —
    the realistic curve saturates (to 0.96) far earlier than the stuck-at
    curve reaches 1.
    """
    ks = np.logspace(0, math.log10(k_max), 40)
    t_curve = [(float(k), coverage_at(max(k, 1.0), s_stuck)) for k in ks]
    theta_curve = [
        (float(k), weighted_coverage_at(max(k, 1.0), s_real, theta_max)) for k in ks
    ]
    data = FigureData(name="figure1")
    data.series = {"T(k)": t_curve, "theta(k)": theta_curve}
    data.scalars = {
        "R": math.log(s_stuck) / math.log(s_real),
        "theta_max": theta_max,
        "crossover_k": _crossover(t_curve, theta_curve),
    }
    rows = [
        (f"{k:.0f}", f"{t:.4f}", f"{theta_curve[i][1]:.4f}")
        for i, (k, t) in enumerate(t_curve)
    ][::4]
    data.render = format_table(
        ["k", "T(k)", "theta(k)"], rows, title="Fig.1 coverage growth"
    )
    return data


def figure2_model_curves(
    yield_value: float = 0.75,
    susceptibility_ratio: float = 2.0,
    theta_max: float = 0.96,
) -> FigureData:
    """Fig. 2: DL(T) under Williams-Brown vs the proposed model (eq. 11)."""
    coverages = np.linspace(0.0, 1.0, 51)
    wb = [(float(t), williams_brown(yield_value, float(t))) for t in coverages]
    sousa = [
        (
            float(t),
            sousa_defect_level(yield_value, float(t), susceptibility_ratio, theta_max),
        )
        for t in coverages
    ]
    data = FigureData(name="figure2")
    data.series = {"Williams-Brown": wb, "eq11": sousa}
    data.scalars = {
        "residual_dl_ppm": ppm(sousa[-1][1]),
        "crossover_T": _model_crossover(wb, sousa),
    }
    data.render = format_series_plot(
        data.series, x_label="T", y_label="DL", log_y=False
    )
    return data


def example1_required_coverage() -> FigureData:
    """Example 1: coverage needed for DL = 100 ppm at Y = 0.75, R = 2.1.

    The paper reports T = 97.7 % under eq. 11 vs 99.97 % under
    Williams-Brown.
    """
    t_model = required_coverage(0.75, 100e-6, susceptibility_ratio=2.1, theta_max=1.0)
    t_wb = required_coverage_williams_brown(0.75, 100e-6)
    data = FigureData(name="example1")
    data.scalars = {"T_eq11": t_model, "T_williams_brown": t_wb}
    data.render = format_table(
        ["model", "required T (%)"],
        [["eq. 11 (R=2.1)", f"{100 * t_model:.2f}"], ["Williams-Brown", f"{100 * t_wb:.2f}"]],
        title="Example 1: coverage for DL=100ppm, Y=0.75",
    )
    return data


def example2_residual_dl() -> FigureData:
    """Example 2: DL at 100 % stuck-at coverage with theta_max = 0.99.

    Eq. 11 gives ``1 - 0.75**0.01 = 2873 ppm`` (the paper prints 2279 ppm —
    a typesetting slip; the formula with its stated parameters yields 2873).
    Williams-Brown predicts zero.
    """
    dl_model = sousa_defect_level(0.75, 1.0, 1.0, 0.99)
    dl_wb = williams_brown(0.75, 1.0)
    data = FigureData(name="example2")
    data.scalars = {"dl_eq11_ppm": ppm(dl_model), "dl_wb_ppm": ppm(dl_wb)}
    data.render = format_table(
        ["model", "DL (ppm)"],
        [["eq. 11 (theta_max=0.99)", f"{ppm(dl_model):.0f}"], ["Williams-Brown", f"{ppm(dl_wb):.0f}"]],
        title="Example 2: residual DL at T=100%",
    )
    return data


# ----------------------------------------------------------------------
# Simulation figures (sections 3-4)
# ----------------------------------------------------------------------
def figure3_weight_histogram(
    config: ExperimentConfig | None = None, n_bins: int = 14
) -> FigureData:
    """Fig. 3: histogram of extracted fault weights (log10 scale).

    The paper's point: weights disperse over decades, so "equal likelihood"
    is untenable (contra Huisman's assumption).
    """
    result = run_experiment(config)
    weights = np.array(result.realistic_faults.weights())
    logs = np.log10(weights)
    counts, edges = np.histogram(logs, bins=n_bins)
    data = FigureData(name="figure3")
    data.series = {
        "histogram": [
            ((edges[i] + edges[i + 1]) / 2, int(c)) for i, c in enumerate(counts)
        ]
    }
    data.scalars = {
        "n_faults": len(weights),
        "log10_spread": float(logs.max() - logs.min()),
        "median_weight": float(np.median(weights)),
        # Dispersion of the mass-carrying population (top 99% of weight),
        # which is what the paper's visible histogram shows.
        "main_mass_spread": _main_mass_spread(weights),
    }
    data.render = format_histogram(
        list(edges), list(counts), label="Fig.3 log10(fault weight) histogram"
    )
    return data


def figure4_coverage_curves(config: ExperimentConfig | None = None) -> FigureData:
    """Fig. 4: T(k), theta(k), Gamma(k) for the c432-class circuit.

    Expected shape (susceptibilities ``s_Gamma > s_T > s_theta``): the
    weighted theta(k) converges fastest, the unweighted Gamma(k) slowest —
    trailing T at high k because hard opens count equally there — and theta
    saturates below 1.
    """
    result = run_experiment(config)
    rows = result.series()
    data = FigureData(name="figure4")
    data.series = {
        "T(k)": [(k, t) for k, t, _, _, _ in rows],
        "theta(k)": [(k, th) for k, _, th, _, _ in rows],
        "Gamma(k)": [(k, g) for k, _, _, g, _ in rows],
    }
    final_k = result.sample_ks[-1]
    data.scalars = {
        "final_T": result.T_at(final_k),
        "theta_max": result.theta_at(final_k),
        "final_gamma": result.gamma_at(final_k),
        "n_patterns": final_k,
        "n_random": result.n_random,
    }
    table_rows = [
        (k, f"{t:.4f}", f"{th:.4f}", f"{g:.4f}") for k, t, th, g, _ in rows
    ]
    data.render = format_table(
        ["k", "T(k)", "theta(k)", "Gamma(k)"],
        table_rows,
        title=f"Fig.4 coverage curves ({result.circuit.name})",
    )
    return data


def figure5_dl_vs_T(config: ExperimentConfig | None = None) -> FigureData:
    """Fig. 5: simulated (T(k), DL(theta(k))) vs Williams-Brown vs fitted eq. 11.

    Paper outcome: concave simulated points well below Williams-Brown, fitted
    by R = 1.9, theta_max = 0.96.
    """
    result = run_experiment(config)
    y = result.config.target_yield
    points = [(result.T_at(k), result.dl_at(k)) for k in result.sample_ks]
    fit = result.fit()
    grid = np.linspace(0.0, 1.0, 51)
    data = FigureData(name="figure5")
    data.series = {
        "simulated": points,
        "Williams-Brown": [(float(t), williams_brown(y, float(t))) for t in grid],
        "fitted-eq11": [(float(t), fit.predict(y, float(t))) for t in grid],
    }
    # The paper contrasts eq. 11 with Agrawal's multiplicity model (eq. 2),
    # which can also be curve-fitted to the same data — report its n.
    from repro.core import fit_agrawal_n

    agrawal_n = fit_agrawal_n(
        [p[0] for p in points], [p[1] for p in points], y
    )
    data.scalars = {
        "R_fit": fit.susceptibility_ratio,
        "theta_max_fit": fit.theta_max,
        "fit_residual": fit.residual,
        "measured_theta_max": result.theta_max,
        "residual_dl_ppm": ppm(result.dl_at(result.sample_ks[-1])),
        "agrawal_n_fit": agrawal_n,
    }
    data.render = format_series_plot(
        data.series, x_label="T", y_label="DL", log_y=True
    )
    return data


def figure6_dl_vs_gamma(config: ExperimentConfig | None = None) -> FigureData:
    """Fig. 6: (Gamma(k), DL(theta(k))) vs the unweighted-coverage prediction.

    The paper's takeaway: even a complete-but-unweighted realistic fault set
    mispredicts DL — the deviation from ``1 - Y**(1-Gamma)`` persists, so
    weighting (eq. 4) is essential.
    """
    result = run_experiment(config)
    y = result.config.target_yield
    points = [(result.gamma_at(k), result.dl_at(k)) for k in result.sample_ks]
    grid = np.linspace(0.0, 1.0, 51)
    data = FigureData(name="figure6")
    data.series = {
        "simulated": points,
        "DL(Gamma)": [(float(g), williams_brown(y, float(g))) for g in grid],
    }
    final_gamma = result.gamma_at(result.sample_ks[-1])
    predicted = williams_brown(y, final_gamma)
    actual = result.dl_at(result.sample_ks[-1])
    data.scalars = {
        "final_gamma": final_gamma,
        "dl_predicted_by_gamma_ppm": ppm(predicted),
        "dl_actual_ppm": ppm(actual),
        "underprediction_factor": actual / predicted if predicted > 0 else float("inf"),
    }
    data.render = format_series_plot(
        data.series, x_label="Gamma", y_label="DL", log_y=True
    )
    return data


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _crossover(
    a: Sequence[tuple[float, float]], b: Sequence[tuple[float, float]]
) -> float:
    """First x where series a rises above series b (they start b > a)."""
    for (x, ya), (_, yb) in zip(a, b):
        if ya >= yb:
            return x
    return float("nan")


def _model_crossover(
    wb: Sequence[tuple[float, float]], model: Sequence[tuple[float, float]]
) -> float:
    """Coverage where eq. 11 crosses back above Williams-Brown (floor regime)."""
    for (t, dl_wb), (_, dl_model) in zip(wb, model):
        if t > 0.1 and dl_model > dl_wb:
            return t
    return float("nan")


def _main_mass_spread(weights: np.ndarray) -> float:
    """Log10 spread of the faults carrying the top 99 % of total weight."""
    order = np.sort(weights)[::-1]
    cumulative = np.cumsum(order)
    cutoff = np.searchsorted(cumulative, 0.99 * cumulative[-1])
    core = order[: max(cutoff + 1, 2)]
    return float(np.log10(core.max()) - np.log10(core.min()))
