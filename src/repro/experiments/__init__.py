"""End-to-end evaluation pipeline and per-figure reproductions."""

from repro.experiments.figures import (
    FigureData,
    example1_required_coverage,
    example2_residual_dl,
    figure1_coverage_growth,
    figure2_model_curves,
    figure3_weight_histogram,
    figure4_coverage_curves,
    figure5_dl_vs_T,
    figure6_dl_vs_gamma,
)
from repro.experiments.pipeline import (
    ExperimentConfig,
    ExperimentResult,
    cache_info,
    run_experiment,
)
from repro.experiments.reporting import (
    format_histogram,
    format_series_plot,
    format_table,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "cache_info",
    "FigureData",
    "example1_required_coverage",
    "example2_residual_dl",
    "figure1_coverage_growth",
    "figure2_model_curves",
    "figure3_weight_histogram",
    "figure4_coverage_curves",
    "figure5_dl_vs_T",
    "figure6_dl_vs_gamma",
    "format_histogram",
    "format_series_plot",
    "format_table",
    "run_experiment",
]
