"""Fault diagnosis: full-response dictionaries and syndrome matching."""

from repro.diagnosis.dictionary import FaultDictionary, Match, Syndrome

__all__ = ["FaultDictionary", "Match", "Syndrome"]
