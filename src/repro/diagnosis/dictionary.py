"""Full-response fault dictionaries and syndrome matching.

Once a chip fails on the tester, the natural follow-up to the paper's flow
is *diagnosis*: which (realistic) defect produced this syndrome?  The
classic tool is a full-response **fault dictionary** — for every modelled
fault, the set of (vector, output) positions at which it fails — matched
against the observed failures.

Realistic faults are diagnosed through **stuck-at surrogates**: a bridge's
syndrome is (per the wired-resolution model) a vector-dependent mix of the
two nets' stuck-at syndromes, so its best dictionary matches are exactly the
stuck-at faults on (or near) the bridged nets.  This is the premise behind
surrogate-based defect diagnosis, and `examples/defect_diagnosis.py`
demonstrates it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.circuit.netlist import Circuit
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import StuckAtFault, collapse_faults
from repro.simulation.logic_sim import pack_patterns

__all__ = ["Syndrome", "Match", "FaultDictionary"]


@dataclass(frozen=True)
class Syndrome:
    """Set of failing (vector index, output index) positions (1-based k)."""

    failures: frozenset[tuple[int, int]]

    @property
    def failing_vectors(self) -> set[int]:
        """Vectors with at least one failing output."""
        return {k for k, _ in self.failures}

    def __len__(self) -> int:
        return len(self.failures)

    def jaccard(self, other: "Syndrome") -> float:
        """Similarity in [0, 1]: |intersection| / |union|."""
        if not self.failures and not other.failures:
            return 1.0
        union = self.failures | other.failures
        if not union:
            return 1.0
        return len(self.failures & other.failures) / len(union)


@dataclass(frozen=True)
class Match:
    """One diagnosis candidate."""

    fault: StuckAtFault
    score: float
    exact: bool


@dataclass
class FaultDictionary:
    """Full-response dictionary for a circuit and a vector sequence."""

    circuit: Circuit
    patterns: list[list[int]]
    faults: list[StuckAtFault] = field(default_factory=list)
    _syndromes: dict[StuckAtFault, Syndrome] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        circuit: Circuit,
        patterns: Sequence[Sequence[int]],
        faults: list[StuckAtFault] | None = None,
    ) -> "FaultDictionary":
        """Simulate every fault against every vector, recording failures."""
        if faults is None:
            faults = collapse_faults(circuit)
        simulator = FaultSimulator(circuit)
        dictionary = cls(
            circuit=circuit,
            patterns=[list(p) for p in patterns],
            faults=list(faults),
        )
        width = simulator.width
        groups = pack_patterns(
            dictionary.patterns, len(circuit.primary_inputs), width
        )
        n_patterns = len(dictionary.patterns)
        pos = {po: i for i, po in enumerate(circuit.primary_outputs)}

        failures: dict[StuckAtFault, set[tuple[int, int]]] = {
            f: set() for f in faults
        }
        for g, words in enumerate(groups):
            base = g * width
            n_here = min(width, n_patterns - base)
            mask = (1 << n_here) - 1
            good = simulator.logic.simulate_packed_list(words)
            for fault in faults:
                per_po = simulator.po_diff_words(fault, good)
                for po, diff in per_po.items():
                    diff &= mask
                    while diff:
                        bit = (diff & -diff).bit_length() - 1
                        failures[fault].add((base + bit + 1, pos[po]))
                        diff &= diff - 1
        dictionary._syndromes = {
            f: Syndrome(frozenset(fails)) for f, fails in failures.items()
        }
        return dictionary

    # ------------------------------------------------------------------
    def syndrome_of(self, fault: StuckAtFault) -> Syndrome:
        """The dictionary's stored syndrome for a modelled fault."""
        return self._syndromes[fault]

    def observe(self, responses: Sequence[Sequence[int]]) -> Syndrome:
        """Build the observed syndrome from tester responses.

        ``responses`` holds the device's output row per vector (PO order);
        positions differing from the good machine become failures.
        """
        if len(responses) != len(self.patterns):
            raise ValueError("one response row per applied vector required")
        from repro.simulation.logic_sim import LogicSimulator

        logic = LogicSimulator(self.circuit)
        expected = logic.run_patterns(self.patterns)
        failures = set()
        for k, (got, want) in enumerate(zip(responses, expected), start=1):
            for j, (g_bit, w_bit) in enumerate(zip(got, want)):
                if g_bit != w_bit:
                    failures.add((k, j))
        return Syndrome(frozenset(failures))

    def diagnose(self, observed: Syndrome, top: int = 5) -> list[Match]:
        """Rank modelled faults by syndrome similarity (Jaccard)."""
        matches = [
            Match(
                fault=fault,
                score=observed.jaccard(syndrome),
                exact=observed.failures == syndrome.failures,
            )
            for fault, syndrome in self._syndromes.items()
        ]
        matches.sort(key=lambda m: (-m.score, str(m.fault)))
        return matches[:top]
