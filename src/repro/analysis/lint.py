"""Structural netlist linter: typed findings over a :class:`Circuit`.

The linter is the static front door of the analysis subsystem: it checks a
netlist for structural defects *before* any simulation or ATPG runs, and it
never raises — broken circuits produce ERROR findings instead of exceptions,
so one pass can report every problem at once (unlike ``Circuit.validate``,
which raises on the first).  The two agree by construction: ``validate()``
raises if and only if the linter emits at least one ERROR finding.

Rules (see ``docs/ANALYSIS.md`` for the full table):

========================  ========  =============================================
rule                      severity  meaning
========================  ========  =============================================
``multi-driven-net``      ERROR     net driven by more than one gate (or a PI)
``undriven-net``          ERROR     gate input or primary output nothing drives
``combinational-cycle``   ERROR     feedback loop; the actual cycle is reported
``dangling-output``       WARNING   gate output that is read by nothing, not a PO
``unreachable-logic``     WARNING   gate with no structural path to any PO
``constant-net``          WARNING   net provably constant (tied/duplicate inputs)
``tied-input``            WARNING   gate reading the same net on several pins
``unused-input``          INFO      primary input read by nothing
``high-fanout``           INFO      net feeding :data:`HIGH_FANOUT_THRESHOLD`+ pins
========================  ========  =============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.levelize import find_combinational_cycle, input_cone
from repro.circuit.netlist import Circuit

__all__ = [
    "HIGH_FANOUT_THRESHOLD",
    "Severity",
    "LintFinding",
    "LintReport",
    "lint_circuit",
]

#: Fanout (reader-pin count) at or above which a net gets an INFO finding.
HIGH_FANOUT_THRESHOLD = 16

_SEVERITY_RANK = {"info": 0, "warning": 1, "error": 2}


class Severity(str, Enum):
    """How bad a lint finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric ordering: INFO < WARNING < ERROR."""
        return _SEVERITY_RANK[self.value]


@dataclass(frozen=True)
class LintFinding:
    """One linter diagnostic.

    Attributes
    ----------
    rule:
        Stable rule identifier (kebab-case, see the module table).
    severity:
        :class:`Severity` of the finding.
    message:
        Human-readable description naming the nets/gates involved.
    nets:
        Net names the finding is about (ordered; e.g. the actual cycle).
    gates:
        Gate names the finding is about.
    """

    rule: str
    severity: Severity
    message: str
    nets: tuple[str, ...] = ()
    gates: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        """JSON-able record of the finding."""
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "nets": list(self.nets),
            "gates": list(self.gates),
        }


@dataclass
class LintReport:
    """All findings of one lint pass, plus circuit-shape statistics.

    Attributes
    ----------
    circuit:
        Name of the linted circuit.
    findings:
        All findings, in rule order (errors first within discovery order).
    fanout_histogram:
        Reader-pin count -> number of nets with that fanout (POs count as
        one extra reader, matching the fault-universe convention).
    stats:
        Summary counts (inputs/outputs/gates/nets, findings by severity).
    constants:
        Provably-constant nets discovered by constant propagation
        (net -> 0/1); consumed by the implication engine.
    """

    circuit: str
    findings: list[LintFinding] = field(default_factory=list)
    fanout_histogram: dict[int, int] = field(default_factory=dict)
    stats: dict[str, int] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)

    def by_severity(self, severity: Severity) -> list[LintFinding]:
        """Findings at exactly ``severity``."""
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> list[LintFinding]:
        """ERROR findings (circuit is structurally invalid)."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[LintFinding]:
        """WARNING findings (valid but suspicious / redundant structure)."""
        return self.by_severity(Severity.WARNING)

    @property
    def max_severity(self) -> Severity | None:
        """Worst severity present, or None for a clean report."""
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def to_dict(self) -> dict[str, object]:
        """JSON-able report record."""
        return {
            "circuit": self.circuit,
            "findings": [f.to_dict() for f in self.findings],
            "fanout_histogram": {
                str(k): v for k, v in sorted(self.fanout_histogram.items())
            },
            "stats": dict(self.stats),
            "constants": dict(self.constants),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Plain-text report: one line per finding plus a summary."""
        lines = [f"lint {self.circuit}: {self._summary()}"]
        for finding in self.findings:
            lines.append(
                f"  {finding.severity.value.upper():7s} "
                f"[{finding.rule}] {finding.message}"
            )
        if self.fanout_histogram:
            peak = max(self.fanout_histogram)
            lines.append(
                f"  fanout: {sum(self.fanout_histogram.values())} nets, "
                f"max {peak} reader pins"
            )
        return "\n".join(lines)

    def _summary(self) -> str:
        n_err = len(self.errors)
        n_warn = len(self.warnings)
        n_info = len(self.by_severity(Severity.INFO))
        if not self.findings:
            return "clean"
        return f"{n_err} error(s), {n_warn} warning(s), {n_info} info"


def lint_circuit(circuit: Circuit) -> LintReport:
    """Run every lint rule over ``circuit`` and return the report.

    Structural (ERROR-class) rules always run; dataflow rules that need a
    topological order (constant propagation) are skipped when the structure
    is too broken to order (cycles / undriven nets), mirroring how the rest
    of the pipeline would fail on such a circuit.
    """
    report = LintReport(circuit=circuit.name)
    findings = report.findings

    driven_by: dict[str, list[str]] = {pi: ["<PI>"] for pi in circuit.primary_inputs}
    for gate in circuit.gates:
        driven_by.setdefault(gate.output, []).append(gate.name)

    # --- multi-driven-net -------------------------------------------------
    for net, drivers in driven_by.items():
        if len(drivers) > 1:
            findings.append(
                LintFinding(
                    rule="multi-driven-net",
                    severity=Severity.ERROR,
                    message=f"net {net!r} has {len(drivers)} drivers: "
                    + ", ".join(drivers),
                    nets=(net,),
                    gates=tuple(d for d in drivers if d != "<PI>"),
                )
            )

    # --- undriven-net -----------------------------------------------------
    undriven: dict[str, list[str]] = {}
    for gate in circuit.gates:
        for net in gate.inputs:
            if net not in driven_by:
                undriven.setdefault(net, []).append(gate.name)
    for po in circuit.primary_outputs:
        if po not in driven_by:
            undriven.setdefault(po, []).append("<PO>")
    for net in sorted(undriven):
        readers = undriven[net]
        findings.append(
            LintFinding(
                rule="undriven-net",
                severity=Severity.ERROR,
                message=f"net {net!r} is read by {', '.join(readers)} "
                "but nothing drives it",
                nets=(net,),
                gates=tuple(r for r in readers if not r.startswith("<")),
            )
        )

    # --- combinational-cycle ----------------------------------------------
    cycle = find_combinational_cycle(circuit)
    if cycle is not None:
        loop = " -> ".join([*cycle, cycle[0]])
        findings.append(
            LintFinding(
                rule="combinational-cycle",
                severity=Severity.ERROR,
                message=f"combinational cycle: {loop}",
                nets=tuple(cycle),
            )
        )

    # --- fanout census (also feeds the histogram and high-fanout rule) ----
    fanout_count: dict[str, int] = dict.fromkeys(driven_by, 0)
    for gate in circuit.gates:
        for net in gate.inputs:
            if net in fanout_count:
                fanout_count[net] += 1
    for po in circuit.primary_outputs:
        if po in fanout_count:
            fanout_count[po] += 1
    histogram: dict[int, int] = {}
    for count in fanout_count.values():
        histogram[count] = histogram.get(count, 0) + 1
    report.fanout_histogram = histogram

    pi_set = set(circuit.primary_inputs)

    # --- dangling-output / unused-input -----------------------------------
    for gate in circuit.gates:
        if fanout_count.get(gate.output, 0) == 0:
            findings.append(
                LintFinding(
                    rule="dangling-output",
                    severity=Severity.WARNING,
                    message=f"gate {gate.name!r} drives net {gate.output!r} "
                    "which nothing reads",
                    nets=(gate.output,),
                    gates=(gate.name,),
                )
            )
    for pi in circuit.primary_inputs:
        if fanout_count.get(pi, 0) == 0:
            findings.append(
                LintFinding(
                    rule="unused-input",
                    severity=Severity.INFO,
                    message=f"primary input {pi!r} is read by nothing",
                    nets=(pi,),
                )
            )

    # --- unreachable-logic -------------------------------------------------
    reachable: set[str] = set()
    for po in circuit.primary_outputs:
        if po in driven_by:
            reachable |= input_cone(circuit, po)
    for gate in circuit.gates:
        if gate.output in reachable:
            continue
        if fanout_count.get(gate.output, 0) == 0:
            continue  # already reported as dangling-output
        findings.append(
            LintFinding(
                rule="unreachable-logic",
                severity=Severity.WARNING,
                message=f"gate {gate.name!r} has no structural path to any "
                "primary output",
                nets=(gate.output,),
                gates=(gate.name,),
            )
        )

    # --- tied-input --------------------------------------------------------
    for gate in circuit.gates:
        if len(set(gate.inputs)) < len(gate.inputs):
            dupes = sorted(
                {net for net in gate.inputs if gate.inputs.count(net) > 1}
            )
            findings.append(
                LintFinding(
                    rule="tied-input",
                    severity=Severity.WARNING,
                    message=f"gate {gate.name!r} reads {', '.join(dupes)} on "
                    "multiple pins (tied inputs make pin faults untestable)",
                    nets=tuple(dupes),
                    gates=(gate.name,),
                )
            )

    # --- high-fanout -------------------------------------------------------
    for net in sorted(fanout_count):
        if fanout_count[net] >= HIGH_FANOUT_THRESHOLD:
            findings.append(
                LintFinding(
                    rule="high-fanout",
                    severity=Severity.INFO,
                    message=f"net {net!r} feeds {fanout_count[net]} pins",
                    nets=(net,),
                )
            )

    # --- constant-net (needs a topological order) --------------------------
    structurally_sound = not undriven and cycle is None and not any(
        len(d) > 1 for d in driven_by.values()
    )
    if structurally_sound:
        from repro.analysis.implication import propagate_constants

        constants = propagate_constants(circuit)
        report.constants = constants
        for net in sorted(constants):
            if net in pi_set:
                continue
            findings.append(
                LintFinding(
                    rule="constant-net",
                    severity=Severity.WARNING,
                    message=f"net {net!r} is constant {constants[net]} under "
                    "every input assignment",
                    nets=(net,),
                )
            )

    findings.sort(key=lambda f: -f.severity.rank)
    report.stats = {
        "inputs": len(circuit.primary_inputs),
        "outputs": len(circuit.primary_outputs),
        "gates": len(circuit.gates),
        "nets": len(driven_by),
        "errors": len(report.errors),
        "warnings": len(report.warnings),
        "infos": len(report.by_severity(Severity.INFO)),
    }
    return report
