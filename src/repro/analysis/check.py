"""Independent verifier for untestability certificates.

This module deliberately knows *nothing* about the prover's algorithms: it
verifies certificates from :mod:`repro.analysis.prover` using only gate
semantics and netlist adjacency, with its own gate evaluator and its own
structural routines.  Where the prover derives dominators by dataflow
intersection, the checker re-verifies each dominator claim by a cut test
(remove the node, confirm no primary output stays reachable); where the
prover's implication engine propagates three-valued rules, the checker
re-verifies each chain step by brute-force enumeration of the gate's local
assignments.  A certificate passes only if every premise is a genuine
necessary condition for detecting the fault and every proof step is a
genuine consequence — so a prover bug cannot smuggle a testable fault into
the proved set.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Any

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Gate

__all__ = ["CheckResult", "CertificateChecker", "check_certificate", "check_certificates"]

#: Certificate format versions this checker understands.  Independent copy
#: of the prover's ``CERTIFICATE_VERSION`` on purpose: bumping the writer
#: without teaching the checker the new format must fail checking.
_SUPPORTED_VERSIONS = (1,)

#: Refuse to enumerate gates wider than this many distinct nets.
_ENUM_CAP = 16

#: Hard ceilings against adversarial certificates.
_MAX_PROOF_NODES = 200_000
_MAX_SPLIT_DEPTH = 64

_NONCONTROLLING = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
}


@dataclass
class CheckResult:
    """Verdict of one certificate check."""

    ok: bool
    error: str | None = None


def _gate_value(gt: GateType, ins: list[int]) -> int:
    """The checker's own gate evaluator — independent of the simulators."""
    if gt is GateType.AND:
        return int(all(ins))
    if gt is GateType.NAND:
        return 1 - int(all(ins))
    if gt is GateType.OR:
        return int(any(ins))
    if gt is GateType.NOR:
        return 1 - int(any(ins))
    if gt is GateType.XOR:
        parity = 0
        for v in ins:
            parity ^= v
        return parity
    if gt is GateType.XNOR:
        parity = 0
        for v in ins:
            parity ^= v
        return 1 - parity
    if gt is GateType.NOT:
        return 1 - ins[0]
    if gt is GateType.BUF:
        return ins[0]
    raise ValueError(f"unknown gate type {gt!r}")


class CertificateChecker:
    """Reusable checker bound to one circuit (precomputed adjacency)."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        self.gate_by_name: dict[str, Gate] = {g.name: g for g in circuit.gates}
        self.driver: dict[str, Gate] = {g.output: g for g in circuit.gates}
        self.readers: dict[str, list[Gate]] = {}
        for gate in circuit.gates:
            for net in gate.inputs:
                self.readers.setdefault(net, []).append(gate)
        self.nets: set[str] = set(circuit.primary_inputs) | set(self.driver)
        self.po_set: set[str] = set(circuit.primary_outputs)
        self._nodes = 0

    # ------------------------------------------------------------------
    # Structural routines (the checker's own, not the prover's)
    # ------------------------------------------------------------------
    def _forward_cone(self, source: str, removed: str | None = None) -> set[str]:
        """Nets reachable from ``source`` by fanout, not expanding ``removed``."""
        seen: set[str] = set()
        stack = [source]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net == removed:
                continue  # the cut: do not traverse through this node
            for gate in self.readers.get(net, ()):
                if gate.output not in seen:
                    stack.append(gate.output)
        return seen

    def _reaches_po(self, source: str, removed: str | None = None) -> bool:
        """Does some path from ``source`` reach a PO while avoiding ``removed``?

        The removed node is never expanded, so every net in the cone was
        reached on a path avoiding it — except the removed node itself, which
        may appear as an endpoint and must not count (a primary output is a
        legitimate dominator of the paths that end at it).
        """
        cone = self._forward_cone(source, removed)
        if removed is not None:
            cone = cone - {removed}
        return bool(cone & self.po_set)

    # ------------------------------------------------------------------
    # Local semantic check
    # ------------------------------------------------------------------
    def _forces(
        self, gate: Gate, known: dict[str, int], net: str, value: int
    ) -> bool:
        """Does ``gate`` (under ``known``, ignoring ``net``) force ``net=value``?

        Every 0/1 completion of the gate's nets consistent with ``known``
        (minus the target) and with the gate's function must give ``net`` the
        claimed value.  Zero consistent completions means ``known`` already
        contradicts the gate — also a valid conflict, hence accepted.
        """
        nets = list(dict.fromkeys((*gate.inputs, gate.output)))
        if net not in nets or len(nets) > _ENUM_CAP:
            return False
        fixed = {n: known[n] for n in nets if n in known and n != net}
        free = [n for n in nets if n not in fixed]
        for bits in product((0, 1), repeat=len(free)):
            local = dict(fixed)
            local.update(zip(free, bits))
            ins = [local[n] for n in gate.inputs]
            if _gate_value(gate.gate_type, ins) != local[gate.output]:
                continue
            if local[net] == 1 - value:
                return False
        return True

    # ------------------------------------------------------------------
    # Proof verification
    # ------------------------------------------------------------------
    def _fail(self, msg: str) -> str:
        return msg

    def _verify_step(
        self,
        step: dict[str, Any],
        premises: frozenset[tuple[str, int]],
        known: dict[str, int],
    ) -> str | None:
        """Verify one chain step's justification; None when it holds."""
        try:
            net, value = step["assign"]
            by = step["by"]
        except (KeyError, TypeError, ValueError):
            return "malformed step"
        if net not in self.nets or value not in (0, 1):
            return f"step names unknown net/value {net!r}={value!r}"
        if by == "premise":
            if (net, value) not in premises:
                return f"premise step {net}={value} not among declared premises"
            return None
        if by == "gate":
            gate = self.gate_by_name.get(step.get("gate", ""))
            if gate is None:
                return f"step cites unknown gate {step.get('gate')!r}"
            if not self._forces(gate, known, net, value):
                return (
                    f"gate {gate.name} does not force {net}={value} "
                    f"under the current assignment"
                )
            return None
        if by == "constant":
            proof = step.get("proof")
            if not isinstance(proof, dict):
                return f"constant step {net}={value} carries no lemma proof"
            err = self._verify_proof(
                proof, frozenset({(net, 1 - value)}), depth=0
            )
            if err is not None:
                return f"constant lemma for {net}={value}: {err}"
            return None
        if by == "learned":
            ant = step.get("antecedent")
            proof = step.get("proof")
            if (
                not isinstance(ant, (list, tuple))
                or len(ant) != 2
                or not isinstance(proof, dict)
            ):
                return "malformed learned step"
            ant_net, ant_val = ant[0], ant[1]
            if known.get(ant_net) != ant_val and (ant_net, ant_val) not in premises:
                return (
                    f"learned antecedent {ant_net}={ant_val} not established"
                )
            err = self._verify_proof(
                proof,
                frozenset({(ant_net, ant_val), (net, 1 - value)}),
                depth=0,
            )
            if err is not None:
                return f"learned lemma {ant_net}={ant_val}->{net}={value}: {err}"
            return None
        return f"unknown step justification {by!r}"

    def _verify_proof(
        self,
        node: dict[str, Any],
        premises: frozenset[tuple[str, int]],
        depth: int,
    ) -> str | None:
        """Verify a chain/split proof node refutes ``premises``."""
        self._nodes += 1
        if self._nodes > _MAX_PROOF_NODES:
            return "proof too large"
        if depth > _MAX_SPLIT_DEPTH:
            return "split nesting too deep"
        if "split" in node:
            net = node["split"]
            cases = node.get("cases")
            if net not in self.nets:
                return f"split on unknown net {net!r}"
            if not isinstance(cases, list) or len(cases) != 2:
                return "split must carry exactly two cases (0 then 1)"
            for b, case in zip((0, 1), cases):
                if not isinstance(case, dict):
                    return "malformed split case"
                err = self._verify_proof(
                    case, premises | {(net, b)}, depth + 1
                )
                if err is not None:
                    return f"case {net}={b}: {err}"
            return None
        chain = node.get("chain")
        conflict = node.get("conflict")
        if not isinstance(chain, list) or not isinstance(conflict, dict):
            return "proof node is neither a split nor a chain with conflict"
        known: dict[str, int] = {}
        for step in chain:
            if not isinstance(step, dict):
                return "malformed step"
            err = self._verify_step(step, premises, known)
            if err is not None:
                return err
            net, value = step["assign"]
            if net in known:
                return f"chain assigns {net} twice"
            known[net] = value
        try:
            c_net, c_value = conflict["assign"]
        except (KeyError, TypeError, ValueError):
            return "malformed conflict"
        if known.get(c_net) != 1 - c_value:
            return (
                f"conflict claims {c_net}={c_value} against prior "
                f"{c_net}={known.get(c_net)!r} — no contradiction"
            )
        err = self._verify_step(conflict, premises, known)
        if err is not None:
            return f"conflict justification: {err}"
        return None

    # ------------------------------------------------------------------
    # Premise validation
    # ------------------------------------------------------------------
    def _verify_premises(
        self, cert: dict[str, Any]
    ) -> tuple[frozenset[tuple[str, int]] | None, str | None]:
        fault = cert.get("fault")
        if not isinstance(fault, dict):
            return None, "certificate carries no fault record"
        f_net = fault.get("net")
        f_value = fault.get("value")
        f_site = fault.get("site")
        if f_net not in self.nets or f_value not in (0, 1):
            return None, f"fault names unknown net/value {f_net!r}/{f_value!r}"

        if f_site == "pin":
            gate = self.gate_by_name.get(fault.get("gate", ""))
            f_pin = fault.get("pin")
            if gate is None or not isinstance(f_pin, int):
                return None, "pin fault without a valid gate/pin"
            if not (0 <= f_pin < len(gate.inputs)) or gate.inputs[f_pin] != f_net:
                return None, "pin fault's pin does not carry the faulted net"
            source = gate.output
        elif f_site == "net":
            source = f_net
            gate = None
            f_pin = None
        else:
            return None, f"unknown fault site {f_site!r}"

        if cert.get("reason") == "unobservable":
            claimed = cert.get("source")
            if claimed != source:
                return None, f"unobservable source mismatch: {claimed!r}"
            if self._reaches_po(source):
                return None, f"{source} reaches a primary output — observable"
            return frozenset(), None

        records = cert.get("premises")
        if not isinstance(records, list) or not records:
            return None, "certificate carries no premises"
        literals: set[tuple[str, int]] = set()
        saw_activation = False
        for rec in records:
            if not isinstance(rec, dict):
                return None, "malformed premise"
            net = rec.get("net")
            value = rec.get("value")
            kind = rec.get("kind")
            if net not in self.nets or value not in (0, 1):
                return None, f"premise names unknown net/value {net!r}"
            if kind == "activation":
                if net != f_net or value != 1 - f_value:
                    return None, "activation premise does not negate the fault"
                saw_activation = True
            elif kind == "side-pin":
                if gate is None or rec.get("gate") != gate.name:
                    return None, "side-pin premise on a non-pin fault"
                pin = rec.get("pin")
                nc = _NONCONTROLLING.get(gate.gate_type)
                if nc is None or value != nc:
                    return None, "side-pin premise with wrong value"
                if (
                    not isinstance(pin, int)
                    or not (0 <= pin < len(gate.inputs))
                    or pin == f_pin
                    or gate.inputs[pin] != net
                ):
                    return None, "side-pin premise names the wrong pin"
            elif kind == "dominator":
                err = self._verify_dominator_premise(rec, source, net, value)
                if err is not None:
                    return None, err
            else:
                return None, f"unknown premise kind {kind!r}"
            literals.add((net, value))
        if not saw_activation:
            return None, "certificate lacks the activation premise"
        return frozenset(literals), None

    def _verify_dominator_premise(
        self, rec: dict[str, Any], source: str, net: str, value: int
    ) -> str | None:
        dom = rec.get("dominator")
        if rec.get("source") != source:
            return "dominator premise cites the wrong source"
        if dom not in self.nets or dom == source:
            return f"invalid dominator {dom!r}"
        cone = self._forward_cone(source)
        if dom not in cone:
            return f"{dom} is not downstream of {source}"
        if not (cone & self.po_set):
            return f"{source} reaches no primary output"
        # The cut test: with dom removed, no PO may remain reachable.
        if self._reaches_po(source, removed=dom):
            return f"{dom} does not dominate every {source}->PO path"
        gate = self.driver.get(dom)
        if gate is None:
            return f"dominator {dom} has no driving gate"
        nc = _NONCONTROLLING.get(gate.gate_type)
        if nc is None or value != nc:
            return "dominator side value is not the non-controlling value"
        if net not in gate.inputs:
            return f"{net} is not an input of {dom}'s driver"
        if net in cone:
            return f"side input {net} lies inside the fault cone"
        return None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def check(self, cert: dict[str, Any]) -> CheckResult:
        self._nodes = 0
        if not isinstance(cert, dict):
            return CheckResult(False, "certificate is not an object")
        if cert.get("version") not in _SUPPORTED_VERSIONS:
            return CheckResult(
                False,
                f"unsupported certificate version {cert.get('version')!r}",
            )
        premises, err = self._verify_premises(cert)
        if err is not None:
            return CheckResult(False, err)
        assert premises is not None
        if cert.get("reason") == "unobservable":
            return CheckResult(True)
        proof = cert.get("proof")
        if not isinstance(proof, dict):
            return CheckResult(False, "certificate carries no proof")
        proof_err = self._verify_proof(proof, premises, depth=0)
        if proof_err is not None:
            return CheckResult(False, proof_err)
        return CheckResult(True)


def check_certificate(circuit: Circuit, cert: dict[str, Any]) -> CheckResult:
    """Verify one certificate against ``circuit``."""
    return CertificateChecker(circuit).check(cert)


def check_certificates(
    circuit: Circuit, certs: list[dict[str, Any]]
) -> tuple[int, list[str]]:
    """Verify many certificates; returns (n_ok, error strings)."""
    checker = CertificateChecker(circuit)
    n_ok = 0
    errors: list[str] = []
    for i, cert in enumerate(certs):
        verdict = checker.check(cert)
        if verdict.ok:
            n_ok += 1
        else:
            fault = cert.get("fault", {}) if isinstance(cert, dict) else {}
            errors.append(
                f"certificate {i} ({fault.get('net')}/sa{fault.get('value')}): "
                f"{verdict.error}"
            )
    return n_ok, errors
