"""Proof-carrying redundancy prover: static + recursive learning, certificates.

Layered on :mod:`repro.analysis.implication`, this module *proves* stuck-at
faults untestable before any simulation, strictly subsuming the FIRE-style
screen, and emits a machine-checkable certificate for every verdict:

* **Static learning** (SOCRATES-style): for every net literal ``a=v`` whose
  implication closure contains ``b=w``, the contrapositive ``b=1-w -> a=1-v``
  holds.  When the contrapositive is *not* already derivable by direct
  implication it is recorded as an indirect learned implication.  Learning
  runs once per netlist and is cached by :func:`netlist_hash`.
* **Recursive learning** (Kunz & Pradhan) to a configurable depth bound:
  when the premise closure of a fault is conflict-free, the prover splits on
  an input of an unjustified gate; if both branches refute, the premises are
  unsatisfiable.  Branches that do not refute still teach — the intersection
  of their closures is a sound consequence set absorbed into the context
  (classic consequence intersection), and a later conflict is re-derived as
  a pure nested split tree so the certificate needs no intersection rule.
* **Unique sensitization** rides on the implication engine's dominator
  machinery: the side inputs of every dominator of the fault's output cone
  must take non-controlling values, and those literals join the premises.
* **Certificates**: every verdict serialises the premise set (activation
  literal, faulted-gate side pins, dominator side inputs) and the refutation
  (implication chains and case splits) as JSON.  The independent checker in
  :mod:`repro.analysis.check` — which knows only gate semantics and netlist
  structure — re-verifies every step; a fault counts as *proved* only when
  its certificate passes that check, so a prover bug can never silently
  delete a testable fault from the coverage denominator.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.circuit.levelize import levelize
from repro.circuit.netlist import Circuit, Gate
from repro.simulation.faults import FaultSite, StuckAtFault, full_fault_universe

from .implication import _NONCONTROLLING, ImplicationEngine

__all__ = [
    "CERTIFICATE_VERSION",
    "ProverResult",
    "RedundancyProver",
    "netlist_hash",
    "prove_untestable",
    "static_learning",
]

CERTIFICATE_VERSION = 1

#: A net/value literal.
Lit = tuple[str, int]

#: Learned implications: antecedent literal -> consequent literals.
LearnedMap = dict[Lit, tuple[Lit, ...]]

#: Cap on input-cone PIs enumerated when certifying a constant by splitting.
_CONST_SPLIT_CAP = 12

#: Default per-fault traced-closure budget for the recursive stage.  32 is
#: calibrated on the built-in benchmarks: raising it to 160 quintuples the
#: c432 wall time without proving a single extra fault.
_DEFAULT_FAULT_BUDGET = 32

#: Default cap on split candidates examined per refutation node.
_DEFAULT_MAX_CANDIDATES = 6


def netlist_hash(circuit: Circuit) -> str:
    """Canonical sha256 of the netlist structure (gates, PIs, POs)."""
    payload = {
        "inputs": list(circuit.primary_inputs),
        "outputs": list(circuit.primary_outputs),
        "gates": sorted(
            [g.gate_type.value, list(g.inputs), g.output] for g in circuit.gates
        ),
    }
    blob = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_STATIC_LEARNING_CACHE: dict[str, LearnedMap] = {}


def static_learning(
    circuit: Circuit, engine: ImplicationEngine | None = None
) -> LearnedMap:
    """Indirect implications learned by contrapositive analysis, cached.

    For every non-constant net literal ``(a, v)`` and every consequent
    ``(b, w)`` of its unit closure, the contrapositive ``(b, 1-w) -> (a, 1-v)``
    is a tautology.  Only *indirect* contrapositives — those the direct
    closure of ``(b, 1-w)`` does not already derive — are recorded, which
    keeps the learned base small and every entry informative.
    """
    key = netlist_hash(circuit)
    cached = _STATIC_LEARNING_CACHE.get(key)
    if cached is not None:
        return cached
    if engine is None:
        engine = ImplicationEngine(circuit)
    acc: dict[Lit, list[Lit]] = {}
    nets = list(circuit.primary_inputs) + [g.output for g in engine.order]
    for net in nets:
        if net in engine.constants:
            continue
        for v in (0, 1):
            closure = engine.unit_closure(net, v)
            if closure is None:
                continue
            for b, w in closure.items():
                if b == net or b in engine.constants:
                    continue
                back = engine.unit_closure(b, 1 - w)
                if back is None:
                    continue  # (b, 1-w) is itself contradictory
                if back.get(net) == 1 - v:
                    continue  # direct — the closure already knows it
                acc.setdefault((b, 1 - w), []).append((net, 1 - v))
    learned: LearnedMap = {
        ant: tuple(dict.fromkeys(cons)) for ant, cons in acc.items()
    }
    _STATIC_LEARNING_CACHE[key] = learned
    return learned


# ---------------------------------------------------------------------------
# Traced closure
# ---------------------------------------------------------------------------
#: One derivation step: (net, value, kind, data, deps).  ``kind`` is one of
#: "premise" / "constant" / "gate" / "learned"; ``data`` carries the gate
#: name or antecedent literal; ``deps`` are the previously-assigned nets the
#: step's justification read (used for backward slicing).
_Step = tuple[str, int, str, Any, tuple[str, ...]]


@dataclass
class _ClosureResult:
    values: dict[str, int]
    steps: list[_Step]
    conflict: _Step | None


@dataclass
class ProverResult:
    """Outcome of one proof run over a fault universe.

    ``proved`` lists faults in input order; each carries a ``reason``
    (``activation`` / ``unobservable`` / ``observation-conflict``), a
    ``method`` (``fire`` / ``static_learning`` / ``recursive_<k>``) and a
    checker-validated certificate in ``certificates`` (same order as
    ``proved``).  ``learned`` is the static learned-implication base, ready
    to hand to PODEM.
    """

    n_screened: int = 0
    depth: int = 0
    netlist_sha256: str = ""
    proved: list[StuckAtFault] = field(default_factory=list)
    reasons: dict[StuckAtFault, str] = field(default_factory=dict)
    methods: dict[StuckAtFault, str] = field(default_factory=dict)
    certificates: list[dict[str, Any]] = field(default_factory=list)
    by_method: dict[str, int] = field(default_factory=dict)
    certs_failed: int = 0
    work: dict[str, int] = field(default_factory=dict)
    learned: LearnedMap = field(default_factory=dict)

    def __contains__(self, fault: StuckAtFault) -> bool:
        return fault in self.reasons

    @property
    def n_learned(self) -> int:
        return sum(len(cons) for cons in self.learned.values())

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe summary (certificates excluded — see ``certificates``)."""
        return {
            "n_screened": self.n_screened,
            "n_proved": len(self.proved),
            "depth": self.depth,
            "netlist_sha256": self.netlist_sha256,
            "by_method": dict(self.by_method),
            "by_reason": _count(self.reasons.values()),
            "n_learned": self.n_learned,
            "certs_failed": self.certs_failed,
            "faults": [str(f) for f in self.proved],
            "work": dict(self.work),
        }


def _count(items: Any) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items:
        out[item] = out.get(item, 0) + 1
    return out


class RedundancyProver:
    """Stateful prover bound to one circuit.

    Stages per fault, in increasing power and cost: direct implication
    closure of the premises (``fire``), closure with the static learned base
    (``static_learning``), then depth-bounded recursive learning
    (``recursive_<k>`` where ``k`` is the deepest case split the final
    certificate uses).  Work is metered in :attr:`work`;
    ``fault_budget`` bounds traced closures spent per fault in the
    recursive stage so the prover degrades gracefully on hard instances.
    """

    def __init__(
        self,
        circuit: Circuit,
        depth: int = 2,
        engine: ImplicationEngine | None = None,
        constants: dict[str, int] | None = None,
        fault_budget: int = _DEFAULT_FAULT_BUDGET,
        max_candidates: int = _DEFAULT_MAX_CANDIDATES,
    ) -> None:
        self.engine = (
            engine
            if engine is not None
            else ImplicationEngine(circuit, constants=constants)
        )
        self.circuit = self.engine.circuit
        self.depth = depth
        self.fault_budget = fault_budget
        self.max_candidates = max_candidates
        self.nhash = netlist_hash(self.circuit)
        self.learned = static_learning(self.circuit, self.engine)
        self.work: dict[str, int] = {
            "closures": 0,
            "steps": 0,
            "refutes": 0,
            "splits": 0,
            "intersections": 0,
        }
        self._topo_index: dict[str, int] = {
            g.output: i for i, g in enumerate(levelize(self.circuit))
        }
        self._gate_by_name: dict[str, Gate] = {
            g.name: g for g in self.circuit.gates
        }
        self._constant_lemmas: dict[Lit, dict[str, Any] | None] = {}
        self._learned_lemmas: dict[tuple[Lit, Lit], dict[str, Any] | None] = {}
        self._cone_pi_cache: dict[str, tuple[str, ...]] = {}
        self._fault_start = 0

    # ------------------------------------------------------------------
    # Traced closure
    # ------------------------------------------------------------------
    def _closure(
        self,
        literals: tuple[Lit, ...],
        use_learned: bool,
        constant_floor: int | None = None,
    ) -> _ClosureResult:
        """Propagate ``literals`` recording every step's justification.

        ``constant_floor`` restricts seeded constants to nets whose
        topological index is strictly below the floor (used when certifying
        a constant without circular reasoning); ``None`` seeds them all.
        """
        self.work["closures"] += 1
        values: dict[str, int] = {}
        steps: list[_Step] = []
        queue: list[str] = []
        conflict: list[_Step | None] = [None]

        def assign(net: str, value: int, kind: str, data: Any) -> bool:
            known = values.get(net)
            if known is None:
                deps = self._deps_for(kind, data, values)
                values[net] = value
                steps.append((net, value, kind, data, deps))
                queue.append(net)
                return True
            if known == value:
                return True
            deps = self._deps_for(kind, data, values)
            conflict[0] = (net, value, kind, data, deps)
            return False

        for cnet, cval in self.engine.constants.items():
            if (
                constant_floor is not None
                and self._topo_index.get(cnet, -1) >= constant_floor
            ):
                continue
            if not assign(cnet, cval, "constant", None):
                return _ClosureResult(values, steps, conflict[0])
        for net, value in literals:
            if not assign(net, value, "premise", None):
                return _ClosureResult(values, steps, conflict[0])

        while queue:
            net = queue.pop()
            if use_learned:
                key = (net, values[net])
                for cons_net, cons_val in self.learned.get(key, ()):
                    if not assign(cons_net, cons_val, "learned", key):
                        return _ClosureResult(values, steps, conflict[0])
            gates = list(self.engine.fanout.get(net, ()))
            driver = self.engine.driver.get(net)
            if driver is not None:
                gates.append(driver)
            for gate in gates:
                self.work["steps"] += 1

                def on_assign(n: str, v: int, _g: Gate = gate) -> bool:
                    return assign(n, v, "gate", _g.name)

                if not self.engine._imply_gate(gate, values, on_assign):
                    return _ClosureResult(values, steps, conflict[0])
        return _ClosureResult(values, steps, None)

    def _deps_for(
        self, kind: str, data: Any, values: dict[str, int]
    ) -> tuple[str, ...]:
        if kind == "gate":
            gate = self._gate_by_name[data]
            return tuple(
                n
                for n in dict.fromkeys((*gate.inputs, gate.output))
                if n in values
            )
        if kind == "learned":
            return (data[0],)
        return ()

    # ------------------------------------------------------------------
    # Certificate emission
    # ------------------------------------------------------------------
    def _chain_node(self, res: _ClosureResult) -> dict[str, Any] | None:
        """Backward-slice a conflicting closure into a chain proof node."""
        conflict = res.conflict
        assert conflict is not None
        needed: set[str] = set(conflict[4]) | {conflict[0]}
        chosen: list[_Step] = []
        for step in reversed(res.steps):
            if step[0] in needed:
                chosen.append(step)
                needed.update(step[4])
        chain: list[dict[str, Any]] = []
        for step in reversed(chosen):
            emitted = self._emit_step(step)
            if emitted is None:
                return None
            chain.append(emitted)
        terminal = self._emit_step(conflict)
        if terminal is None:
            return None
        return {"chain": chain, "conflict": terminal}

    def _emit_step(self, step: _Step) -> dict[str, Any] | None:
        net, value, kind, data, _deps = step
        out: dict[str, Any] = {"assign": [net, value], "by": kind}
        if kind == "gate":
            out["gate"] = data
        elif kind == "constant":
            lemma = self._constant_lemma(net, value)
            if lemma is None:
                return None
            out["proof"] = lemma
        elif kind == "learned":
            sub = self._learned_lemma(data, (net, value))
            if sub is None:
                return None
            out["antecedent"] = [data[0], data[1]]
            out["proof"] = sub
        return out

    def _constant_lemma(self, net: str, value: int) -> dict[str, Any] | None:
        """Certify ``net`` constant ``value`` by refuting ``net = 1-value``.

        The refutation may not assume the constant itself: only constants
        strictly upstream in topological order are seeded (each carrying its
        own recursively-certified lemma), and any remaining freedom is split
        over the net's input-cone primary inputs — for a truth-table constant
        every full support assignment forward-evaluates to ``value``, so the
        split tree always closes.
        """
        key = (net, value)
        if key in self._constant_lemmas:
            return self._constant_lemmas[key]
        self._constant_lemmas[key] = None  # cycle guard
        floor = self._topo_index.get(net, -1)
        candidates = self._cone_pis(net)
        proof: dict[str, Any] | None = None
        if len(candidates) <= _CONST_SPLIT_CAP:
            proof = self._const_split(((net, 1 - value),), floor, candidates)
        else:
            res = self._closure(((net, 1 - value),), False, constant_floor=floor)
            if res.conflict is not None:
                proof = self._chain_node(res)
        self._constant_lemmas[key] = proof
        return proof

    def _cone_pis(self, net: str) -> tuple[str, ...]:
        """Primary inputs in ``net``'s transitive fanin, in PI declaration order."""
        cached = self._cone_pi_cache.get(net)
        if cached is not None:
            return cached
        support: set[str] = set()
        seen: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            driver = self.engine.driver.get(n)
            if driver is None:
                support.add(n)
            else:
                stack.extend(driver.inputs)
        pis = tuple(p for p in self.circuit.primary_inputs if p in support)
        self._cone_pi_cache[net] = pis
        return pis

    def _const_split(
        self, literals: tuple[Lit, ...], floor: int, candidates: tuple[str, ...]
    ) -> dict[str, Any] | None:
        res = self._closure(literals, False, constant_floor=floor)
        if res.conflict is not None:
            return self._chain_node(res)
        for i, pi in enumerate(candidates):
            if pi in res.values:
                continue
            cases: list[dict[str, Any]] = []
            for b in (0, 1):
                node = self._const_split(
                    (*literals, (pi, b)), floor, candidates[i + 1 :]
                )
                if node is None:
                    return None
                cases.append(node)
            return {"split": pi, "cases": cases}
        return None

    def _learned_lemma(self, ant: Lit, cons: Lit) -> dict[str, Any] | None:
        """Certify learned ``ant -> cons``: refute ``{ant, not cons}`` directly."""
        key = (ant, cons)
        if key in self._learned_lemmas:
            return self._learned_lemmas[key]
        self._learned_lemmas[key] = None  # cycle guard
        res = self._closure((ant, (cons[0], 1 - cons[1])), False)
        proof = self._chain_node(res) if res.conflict is not None else None
        self._learned_lemmas[key] = proof
        return proof

    # ------------------------------------------------------------------
    # Recursive learning
    # ------------------------------------------------------------------
    def _candidates(self, values: dict[str, int]) -> list[str]:
        """Unknown inputs of unjustified gates — the split universe."""
        out: list[str] = []
        seen: set[str] = set()
        for gate in self.engine.order:
            o = values.get(gate.output)
            if o is None:
                continue
            ins = [values.get(n) for n in gate.inputs]
            if None not in ins:
                continue
            if ImplicationEngine._forward(gate.gate_type, ins) == o:
                continue  # already justified by its inputs
            for n, v in zip(gate.inputs, ins):
                if v is None and n not in seen:
                    seen.add(n)
                    out.append(n)
                    if len(out) >= self.max_candidates:
                        return out
        return out

    def _budget_left(self) -> bool:
        return self.work["closures"] - self._fault_start < self.fault_budget

    def _refute(
        self, literals: tuple[Lit, ...], depth: int
    ) -> tuple[dict[str, Any] | None, dict[str, int] | None]:
        """Try to refute ``literals``; return (certificate, closure-values).

        On success the certificate is a pure chain/split proof node; on
        failure the conflict-free closure values are returned for
        consequence intersection by the caller.
        """
        self.work["refutes"] += 1
        res = self._closure(literals, True)
        if res.conflict is not None:
            node = self._chain_node(res)
            return (node, None) if node is not None else (None, None)
        if depth <= 0 or not self._budget_left():
            return None, res.values
        context = list(literals)
        plan: list[str] = []
        cur = res
        for x in self._candidates(res.values):
            if not self._budget_left():
                break
            self.work["splits"] += 1
            p0, v0 = self._refute((*context, (x, 0)), depth - 1)
            p1, v1 = self._refute((*context, (x, 1)), depth - 1)
            if p0 is not None and p1 is not None:
                if plan:
                    return self._nest(literals, (*plan, x)), None
                return {"split": x, "cases": [p0, p1]}, None
            branch_values = [
                v for p, v in ((p0, v0), (p1, v1)) if p is None
            ]
            if not branch_values or any(v is None for v in branch_values):
                continue
            if len(branch_values) == 1:
                common = dict(branch_values[0] or {})
            else:
                first, second = branch_values[0] or {}, branch_values[1] or {}
                common = {n: v for n, v in first.items() if second.get(n) == v}
            new = [
                (n, v) for n, v in common.items() if cur.values.get(n) != v
            ]
            if not new:
                continue
            self.work["intersections"] += 1
            context.extend(new)
            plan.append(x)
            cur = self._closure(tuple(context), True)
            if cur.conflict is not None:
                return self._nest(literals, tuple(plan)), None
        return None, cur.values if cur.conflict is None else None

    def _nest(
        self, base: tuple[Lit, ...], plan: tuple[str, ...]
    ) -> dict[str, Any] | None:
        """Re-derive an intersection-assisted conflict as a pure split tree.

        Monotonicity of the closure operator guarantees each leaf of the
        nested tree conflicts whenever the intersection-augmented context
        did; the re-derivation keeps certificates free of intersection
        steps, so the checker needs only chains and exhaustive splits.
        """
        res = self._closure(base, True)
        if res.conflict is not None:
            return self._chain_node(res)
        if not plan:
            return None
        cases: list[dict[str, Any]] = []
        for b in (0, 1):
            node = self._nest((*base, (plan[0], b)), plan[1:])
            if node is None:
                return None
            cases.append(node)
        return {"split": plan[0], "cases": cases}

    # ------------------------------------------------------------------
    # Per-fault proof
    # ------------------------------------------------------------------
    def _premise_records(
        self, fault: StuckAtFault
    ) -> tuple[list[dict[str, Any]], str] | None:
        """Premise list for ``fault``, or None when it is unobservable."""
        records: list[dict[str, Any]] = [
            {
                "net": fault.net,
                "value": 1 - fault.value,
                "kind": "activation",
            }
        ]
        if fault.site is FaultSite.GATE_INPUT:
            assert fault.gate is not None and fault.pin is not None
            gate = self._gate_by_name[fault.gate]
            nc = _NONCONTROLLING.get(gate.gate_type)
            if nc is not None:
                for pin, side in enumerate(gate.inputs):
                    if pin != fault.pin:
                        records.append(
                            {
                                "net": side,
                                "value": nc,
                                "kind": "side-pin",
                                "gate": gate.name,
                                "pin": pin,
                            }
                        )
            source = gate.output
        else:
            source = fault.net
        reachable, details = self.engine.observation_details(source)
        if not reachable:
            return None
        for dom, side, nc_val in details:
            records.append(
                {
                    "net": side,
                    "value": nc_val,
                    "kind": "dominator",
                    "dominator": dom,
                    "source": source,
                }
            )
        return records, source

    def prove_fault(
        self, fault: StuckAtFault
    ) -> tuple[dict[str, Any], str, str] | None:
        """Prove one fault untestable: (certificate, reason, method) or None."""
        cert: dict[str, Any] = {
            "version": CERTIFICATE_VERSION,
            "circuit": self.circuit.name,
            "netlist_sha256": self.nhash,
            "fault": {
                "net": fault.net,
                "value": fault.value,
                "site": fault.site.value,
                "gate": fault.gate,
                "pin": fault.pin,
            },
        }
        premised = self._premise_records(fault)
        if premised is None:
            source = (
                self._gate_by_name[fault.gate].output
                if fault.site is FaultSite.GATE_INPUT and fault.gate is not None
                else fault.net
            )
            cert.update(
                reason="unobservable", method="fire", source=source, premises=[]
            )
            return cert, "unobservable", "fire"
        records, _source = premised
        literals = tuple(
            dict.fromkeys((r["net"], r["value"]) for r in records)
        )
        activation = literals[0]

        proof: dict[str, Any] | None = None
        method = ""
        res = self._closure(literals, False)
        if res.conflict is not None:
            proof = self._chain_node(res)
            method = "fire"
        if proof is None:
            res = self._closure(literals, True)
            if res.conflict is not None:
                proof = self._chain_node(res)
                method = "static_learning"
        if proof is None and self.depth > 0:
            self._fault_start = self.work["closures"]
            proof, _values = self._refute(literals, self.depth)
            if proof is not None:
                method = f"recursive_{max(1, _split_depth(proof))}"
        if proof is None:
            return None

        reason = "observation-conflict"
        if len(literals) == 1:
            reason = "activation"
        elif self.engine.unit_closure(*activation) is None:
            reason = "activation"
        cert.update(reason=reason, method=method, premises=records, proof=proof)
        return cert, reason, method

    def prove(
        self, faults: list[StuckAtFault] | None = None
    ) -> ProverResult:
        """Prove over ``faults`` (default: the full universe), checking certs."""
        from .check import check_certificate

        if faults is None:
            faults = full_fault_universe(self.circuit)
        result = ProverResult(
            n_screened=len(faults),
            depth=self.depth,
            netlist_sha256=self.nhash,
            learned=self.learned,
        )
        for fault in faults:
            outcome = self.prove_fault(fault)
            if outcome is None:
                continue
            cert, reason, method = outcome
            verdict = check_certificate(self.circuit, cert)
            if not verdict.ok:
                result.certs_failed += 1
                continue
            result.proved.append(fault)
            result.reasons[fault] = reason
            result.methods[fault] = method
            result.certificates.append(cert)
            result.by_method[method] = result.by_method.get(method, 0) + 1
        result.work = dict(self.work)
        result.work["engine_closures"] = self.engine.stats["closures"]
        result.work["engine_steps"] = self.engine.stats["steps"]
        return result


def _split_depth(node: dict[str, Any]) -> int:
    """Deepest case-split nesting in a proof node (lemmas excluded)."""
    if "split" in node:
        return 1 + max(_split_depth(case) for case in node["cases"])
    return 0


def prove_untestable(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    depth: int = 2,
    engine: ImplicationEngine | None = None,
    constants: dict[str, int] | None = None,
    fault_budget: int = _DEFAULT_FAULT_BUDGET,
) -> ProverResult:
    """Prove faults untestable with certificates; the module-level façade.

    Every fault in the result's ``proved`` list carries a certificate that
    the independent checker (:mod:`repro.analysis.check`) has validated —
    unverifiable verdicts are dropped (and counted in ``certs_failed``),
    keeping the proved set sound by construction.
    """
    prover = RedundancyProver(
        circuit,
        depth=depth,
        engine=engine,
        constants=constants,
        fault_budget=fault_budget,
    )
    return prover.prove(faults)
