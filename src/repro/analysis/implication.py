"""Static implication engine and fault-independent untestability screening.

Identifies provably-untestable stuck-at faults from circuit structure alone —
no test vectors, no search — in the spirit of FIRE (Iyer & Abramovici 1996):
a fault is untestable when a *necessary condition* for detecting it is
unsatisfiable.  Two necessary-condition families are used:

* **Activation** — detecting ``net/sa-v`` requires the good value of ``net``
  to be ``1-v``.  If asserting ``net = 1-v`` and closing direct implications
  reaches a contradiction (e.g. the net is provably constant ``v``), the
  fault is untestable.
* **Observation** — every sensitized path from the fault site to any primary
  output passes through the site's *dominator* gates; each dominator's side
  inputs that lie outside the fault's output cone must carry the gate's
  non-controlling value.  For pin faults the faulted gate's own side pins
  join the requirement (which is how tied-input pin faults are caught).
  The union of all required literals is closed under implication; any
  conflict proves untestability.  Nets with no structural path to a primary
  output are untestable outright.

All implications are *sound* (necessary consequences), so every flagged
fault is genuinely undetectable by any vector — the property the ATPG and
coverage-ceiling (``theta_max``) integrations rely on, and which
``tests/test_analysis_implication.py`` cross-checks against exhaustive
simulation and PODEM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.circuit.levelize import levelize
from repro.circuit.library import GateType, evaluate_gate_packed
from repro.circuit.netlist import Circuit, Gate
from repro.simulation.faults import FaultSite, StuckAtFault, full_fault_universe

__all__ = [
    "propagate_constants",
    "ImplicationEngine",
    "UntestabilityReport",
    "find_untestable_faults",
]

#: Bound on distinct unknown inputs enumerated when proving a gate constant.
_CONST_ENUM_LIMIT = 8

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}
_NONCONTROLLING = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
}
_INVERTING = {GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR}


#: A net's exact function as (support PIs, truth-table bitmask): bit ``i`` of
#: the mask is the net's value under the support assignment encoded by ``i``.
_Table = tuple[tuple[str, ...], int]


def _expand(table: _Table, merged: tuple[str, ...]) -> int:
    """Re-express ``table``'s truth mask over the wider support ``merged``."""
    support, mask = table
    n_assign = 1 << len(merged)
    if not support:
        return ((1 << n_assign) - 1) if mask else 0
    positions = [merged.index(net) for net in support]
    out = 0
    for idx in range(n_assign):
        sub = 0
        for j, pos in enumerate(positions):
            sub |= ((idx >> pos) & 1) << j
        if (mask >> sub) & 1:
            out |= 1 << idx
    return out


def propagate_constants(circuit: Circuit) -> dict[str, int]:
    """Nets provably constant under every input assignment (net -> 0/1).

    Each net with at most :data:`_CONST_ENUM_LIMIT` primary inputs in its
    support carries an exact truth table (a bitmask over support
    assignments), built forward through the levelized order with the packed
    gate evaluator.  An all-zeros/all-ones table is a proven constant — this
    catches tied pins (``XOR(a, a)``), reconvergent cancellation
    (``AND(a, NOT a)``) and anything else within the support bound.  Wider
    nets fall back to controlling-constant propagation only.
    """
    constants: dict[str, int] = {}
    tables: dict[str, _Table | None] = {
        pi: ((pi,), 0b10) for pi in circuit.primary_inputs
    }
    for gate in levelize(circuit):
        in_tables = [tables[n] for n in gate.inputs]
        merged: tuple[str, ...] | None = None
        if all(t is not None for t in in_tables):
            support: list[str] = []
            for t in in_tables:
                assert t is not None
                for net in t[0]:
                    if net not in support:
                        support.append(net)
            if len(support) <= _CONST_ENUM_LIMIT:
                merged = tuple(support)

        if merged is None:
            # Support too wide for an exact table: only a controlling
            # constant input can still force the output.
            ctrl = _CONTROLLING.get(gate.gate_type)
            if ctrl is not None and any(
                constants.get(n) == ctrl for n in gate.inputs
            ):
                out = ctrl if gate.gate_type not in _INVERTING else 1 - ctrl
                constants[gate.output] = out
                tables[gate.output] = ((), out)
            else:
                tables[gate.output] = None
            continue

        n_assign = 1 << len(merged)
        full = (1 << n_assign) - 1
        masks = [_expand(t, merged) for t in in_tables if t is not None]
        out_mask = evaluate_gate_packed(gate.gate_type, masks, mask=full)
        if out_mask == 0:
            constants[gate.output] = 0
            tables[gate.output] = ((), 0)
        elif out_mask == full:
            constants[gate.output] = 1
            tables[gate.output] = ((), 1)
        else:
            tables[gate.output] = (merged, out_mask)
    return constants


@dataclass
class UntestabilityReport:
    """Outcome of one static untestable-fault screen.

    Attributes
    ----------
    untestable:
        Faults proved untestable, in input-universe order.
    reasons:
        Fault -> short reason tag (``"activation"``, ``"unobservable"``,
        ``"observation-conflict"``).
    n_screened:
        Number of faults examined.
    work:
        Implication-engine work counters at the end of the screen.
    """

    untestable: list[StuckAtFault] = field(default_factory=list)
    reasons: dict[StuckAtFault, str] = field(default_factory=dict)
    n_screened: int = 0
    work: dict[str, int] = field(default_factory=dict)

    def __contains__(self, fault: StuckAtFault) -> bool:
        return fault in self.reasons


class ImplicationEngine:
    """Direct-implication closure over a combinational netlist.

    ``closure(literals)`` asserts net/value literals and propagates every
    *sound* direct consequence — three-valued forward evaluation, forced
    backward implications (AND output 1 forces all inputs 1, ...), last-free
    -input justification and XOR parity completion — returning the implied
    partial assignment, or ``None`` on contradiction.  Provable constants
    from :func:`propagate_constants` seed every closure.

    Work is metered in :attr:`stats` (``"closures"`` started, ``"steps"``
    gate evaluations) so callers can assert static-analysis cost bounds.
    """

    def __init__(self, circuit: Circuit, constants: dict[str, int] | None = None):
        circuit.validate()
        self.circuit = circuit
        self.order = levelize(circuit)
        self.driver: dict[str, Gate] = {g.output: g for g in circuit.gates}
        self.fanout: dict[str, list[Gate]] = circuit.fanout_map()
        self.constants = (
            dict(constants) if constants is not None else propagate_constants(circuit)
        )
        self.stats: dict[str, int] = {"closures": 0, "steps": 0}
        self._unit_cache: dict[tuple[str, int], dict[str, int] | None] = {}
        self._obs_cache: dict[str, tuple[bool, frozenset[tuple[str, int]]]] = {}
        self._obs_detail_cache: dict[
            str, tuple[bool, tuple[tuple[str, str, int], ...]]
        ] = {}

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------
    def closure(
        self, literals: Iterable[tuple[str, int]]
    ) -> dict[str, int] | None:
        """Implied assignment from asserting ``literals``; None on conflict."""
        self.stats["closures"] += 1
        values: dict[str, int] = dict(self.constants)
        queue: list[str] = list(values)
        for net, value in literals:
            if values.get(net, value) != value:
                return None
            if net not in values:
                values[net] = value
                queue.append(net)
        return self._propagate(values, queue)

    def unit_closure(self, net: str, value: int) -> dict[str, int] | None:
        """Memoised closure of the single literal ``net = value``."""
        key = (net, value)
        if key not in self._unit_cache:
            self._unit_cache[key] = self.closure([key])
        return self._unit_cache[key]

    def is_justifiable(self, net: str, value: int) -> bool:
        """Whether ``net = value`` survives implication closure."""
        return self.unit_closure(net, value) is not None

    def _propagate(
        self, values: dict[str, int], queue: list[str]
    ) -> dict[str, int] | None:
        def assign(net: str, value: int) -> bool:
            known = values.get(net)
            if known is None:
                values[net] = value
                queue.append(net)
                return True
            return known == value

        while queue:
            net = queue.pop()
            gates = list(self.fanout.get(net, ()))
            gate = self.driver.get(net)
            if gate is not None:
                gates.append(gate)
            for g in gates:
                self.stats["steps"] += 1
                if not self._imply_gate(g, values, assign):
                    return None
        return values

    def _imply_gate(
        self,
        gate: Gate,
        values: dict[str, int],
        assign: Callable[[str, int], bool],
    ) -> bool:
        gt = gate.gate_type
        ins = [values.get(n) for n in gate.inputs]
        out = values.get(gate.output)
        inverted = gt in _INVERTING

        # Forward: three-valued evaluation of the inputs.
        forward = self._forward(gt, ins)
        if forward is not None and not assign(gate.output, forward):
            return False
        out = values.get(gate.output)
        if out is None:
            return True
        core = 1 - out if inverted else out

        if gt in (GateType.NOT, GateType.BUF):
            return assign(gate.inputs[0], core)
        if gt in (GateType.XOR, GateType.XNOR):
            # Parity completion: all but one input known pins the last.
            unknown = [n for n, v in zip(gate.inputs, ins) if v is None]
            if len(unknown) == 1:
                parity = 0
                for v in ins:
                    if v is not None:
                        parity ^= v
                target = (out ^ parity) if gt is GateType.XOR else (1 - out) ^ parity
                return assign(unknown[0], target)
            return True

        controlling = _CONTROLLING[gt]
        if core == 1 - controlling:
            # Output forced to the all-noncontrolling case: every input known.
            nc = _NONCONTROLLING[gt]
            return all(assign(n, nc) for n in gate.inputs)
        # Output at the controlled value: at least one input controlling.
        # Last-free-input justification: if every other input is known
        # non-controlling, the remaining one must be controlling.
        unknown = [n for n, v in zip(gate.inputs, ins) if v is None]
        if len(unknown) == 1 and all(
            v == _NONCONTROLLING[gt] for v in ins if v is not None
        ):
            return assign(unknown[0], controlling)
        return True

    @staticmethod
    def _forward(gt: GateType, ins: list[int | None]) -> int | None:
        if gt in (GateType.AND, GateType.NAND):
            if any(v == 0 for v in ins):
                core = 0
            elif all(v == 1 for v in ins):
                core = 1
            else:
                return None
            return 1 - core if gt is GateType.NAND else core
        if gt in (GateType.OR, GateType.NOR):
            if any(v == 1 for v in ins):
                core = 1
            elif all(v == 0 for v in ins):
                core = 0
            else:
                return None
            return 1 - core if gt is GateType.NOR else core
        if gt in (GateType.XOR, GateType.XNOR):
            if any(v is None for v in ins):
                return None
            parity = 0
            for v in ins:
                parity ^= v  # type: ignore[operator]
            return 1 - parity if gt is GateType.XNOR else parity
        if ins[0] is None:
            return None
        return 1 - ins[0] if gt is GateType.NOT else ins[0]

    # ------------------------------------------------------------------
    # Observation requirements (dominators)
    # ------------------------------------------------------------------
    def observation_requirements(
        self, net: str
    ) -> tuple[bool, frozenset[tuple[str, int]]]:
        """Necessary side-input literals for observing a change on ``net``.

        Returns ``(reachable, literals)``: ``reachable`` is False when no
        primary output lies in the net's output cone (any fault there is
        untestable); ``literals`` are ``(side_net, non_controlling)`` pairs
        over the dominator gates strictly downstream of ``net``.
        """
        cached = self._obs_cache.get(net)
        if cached is not None:
            return cached
        reachable, details = self.observation_details(net)
        result = (
            reachable,
            frozenset((side, nc) for _dom, side, nc in details),
        )
        self._obs_cache[net] = result
        return result

    def observation_details(
        self, net: str
    ) -> tuple[bool, tuple[tuple[str, str, int], ...]]:
        """Like :meth:`observation_requirements`, keeping dominator provenance.

        Returns ``(reachable, details)`` where each detail is
        ``(dominator_net, side_net, non_controlling_value)`` — the shape the
        prover's certificates need so the independent checker can re-verify
        each dominator claim structurally.
        """
        cached = self._obs_detail_cache.get(net)
        if cached is not None:
            return cached

        cone, cone_order = self._cone_order(net)
        po_set = set(self.circuit.primary_outputs)
        cone_pos = [n for n in cone_order if n in po_set]
        if not cone_pos:
            detail_result: tuple[bool, tuple[tuple[str, str, int], ...]] = (
                False,
                (),
            )
            self._obs_detail_cache[net] = detail_result
            return detail_result

        # Dominators of every source->PO path, by forward dataflow over the
        # cone: dom(n) = {n} | intersection of dom over in-cone predecessors.
        dom: dict[str, frozenset[str]] = {net: frozenset((net,))}
        for n in cone_order:
            if n == net:
                continue
            preds = [
                p for p in self.driver[n].inputs if p in cone
            ]
            inter: frozenset[str] | None = None
            for p in preds:
                d = dom[p]
                inter = d if inter is None else inter & d
            dom[n] = (inter or frozenset()) | {n}
        common: frozenset[str] | None = None
        for po in cone_pos:
            common = dom[po] if common is None else common & dom[po]
        dominators = (common or frozenset()) - {net}

        details: list[tuple[str, str, int]] = []
        for d in sorted(dominators):
            gate = self.driver.get(d)
            if gate is None:
                continue
            nc = _NONCONTROLLING.get(gate.gate_type)
            if nc is None:
                continue  # XOR family / NOT / BUF propagate unconditionally
            for side in gate.inputs:
                if side not in cone:
                    details.append((d, side, nc))
        detail_result = (True, tuple(details))
        self._obs_detail_cache[net] = detail_result
        return detail_result

    def _cone_order(self, net: str) -> tuple[set[str], list[str]]:
        """Output cone of ``net`` and its members in topological order."""
        cone = {net}
        for gate in self.order:
            if any(n in cone for n in gate.inputs):
                cone.add(gate.output)
        order = [net] + [g.output for g in self.order if g.output in cone and g.output != net]
        return cone, order


def find_untestable_faults(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    engine: ImplicationEngine | None = None,
) -> UntestabilityReport:
    """Screen ``faults`` (default: the full universe) for provable untestability.

    Every returned fault carries a proof sketch in ``reasons``; soundness is
    the contract — a flagged fault is undetectable by *any* input vector.
    """
    if faults is None:
        faults = full_fault_universe(circuit)
    if engine is None:
        engine = ImplicationEngine(circuit)

    report = UntestabilityReport(n_screened=len(faults))
    gate_by_name = {g.name: g for g in circuit.gates}

    def flag(fault: StuckAtFault, reason: str) -> None:
        report.untestable.append(fault)
        report.reasons[fault] = reason

    for fault in faults:
        # --- activation: the site must be drivable to the opposite value ---
        activation = (fault.net, 1 - fault.value)
        if not engine.is_justifiable(*activation):
            flag(fault, "activation")
            continue

        # --- observation: dominator side inputs + own-gate side pins -------
        required: set[tuple[str, int]] = {activation}
        if fault.site is FaultSite.GATE_INPUT:
            assert fault.gate is not None and fault.pin is not None
            gate = gate_by_name[fault.gate]
            nc = _NONCONTROLLING.get(gate.gate_type)
            if nc is not None:
                for pin, side in enumerate(gate.inputs):
                    if pin != fault.pin:
                        required.add((side, nc))
            source = gate.output
        else:
            source = fault.net
        reachable, side_literals = engine.observation_requirements(source)
        if not reachable:
            flag(fault, "unobservable")
            continue
        required |= side_literals

        conflict = False
        merged: dict[str, int] = {}
        for literal in required:
            unit = engine.unit_closure(*literal)
            if unit is None:
                conflict = True
                break
            for net, value in unit.items():
                if merged.setdefault(net, value) != value:
                    conflict = True
                    break
            if conflict:
                break
        if not conflict and len(required) > 1:
            conflict = engine.closure(sorted(required)) is None
        if conflict:
            flag(fault, "observation-conflict")

    report.work = dict(engine.stats)
    return report
