"""Dominance-based fault collapsing, layered on equivalence collapsing.

Fault ``A`` *dominates* fault ``B`` when every test that detects ``B`` also
detects ``A`` — so a test set covering ``B`` covers ``A`` for free and ``A``
can be dropped from the target list.  The gate-local instances are classical
(Poage/To): for an n-input AND, any test for an input stuck-at-1 must set the
remaining inputs non-controlling and propagate the output change, which is
precisely a test for the output stuck-at-1.  Per gate type the droppable
output fault is::

    AND  out/sa1    NAND out/sa0    OR   out/sa0    NOR  out/sa1

XOR-family and single-input gates give no dominance beyond equivalence.

Dominance is transitive (it is containment of test sets), so chains of drops
are sound: every dropped class is dominated by a *witness* fault on one of the
gate's input pins, and witness chains walk strictly toward the inputs,
terminating at checkpoint faults (primary-input stems and fanout branches)
which are never gate outputs and hence never dropped.

The drop is conservative about observability bookkeeping: a class is kept
when the gate output is a primary output or the class contains any stem fault
on a primary-output net, mirroring the PO-awareness of the equivalence pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.simulation.faults import (
    FaultSite,
    StuckAtFault,
    collapse_with_classes,
    fanout_pin_counts,
)

__all__ = ["DominanceResult", "dominance_collapse"]

# Gate type -> stuck value of the *output* fault dominated by the gate's
# non-controlling input faults (and therefore droppable).
_DOMINATED_OUTPUT_VALUE = {
    GateType.AND: 1,
    GateType.NAND: 0,
    GateType.OR: 0,
    GateType.NOR: 1,
}

# Gate type -> non-controlling input value (the witness faults' stuck value).
_NONCONTROLLING_INPUT = {
    GateType.AND: 1,
    GateType.NAND: 1,
    GateType.OR: 0,
    GateType.NOR: 0,
}


@dataclass
class DominanceResult:
    """Outcome of one dominance-collapse pass.

    Attributes
    ----------
    collapsed:
        Surviving representative faults, a subset of the equivalence-collapsed
        list in its original order.
    dropped:
        Representatives removed by dominance, each with the witness fault that
        dominates-covers it (rep -> witness).
    rep_of:
        Fault -> surviving representative.  Faults of dropped classes map to
        the representative of their witness's class, following chains.
    """

    collapsed: list[StuckAtFault] = field(default_factory=list)
    dropped: dict[StuckAtFault, StuckAtFault] = field(default_factory=dict)
    rep_of: dict[StuckAtFault, StuckAtFault] = field(default_factory=dict)

    @property
    def n_dropped(self) -> int:
        """Number of equivalence classes removed by dominance."""
        return len(self.dropped)


def dominance_collapse(
    circuit: Circuit, faults: list[StuckAtFault] | None = None
) -> DominanceResult:
    """Equivalence-collapse ``faults`` then drop dominated output classes.

    The result is always a subset of :func:`collapse_faults`'s output (never
    larger), and any test set detecting every surviving fault detects every
    dropped fault too — the property the dominance benchmark guard asserts.
    """
    collapsed, eq_rep_of = collapse_with_classes(circuit, faults)

    members: dict[StuckAtFault, list[StuckAtFault]] = {}
    for fault, rep in eq_rep_of.items():
        members.setdefault(rep, []).append(fault)

    fanout_count = fanout_pin_counts(circuit)
    po_set = set(circuit.primary_outputs)

    def witness_fault(gate_name: str, pin: int, net: str, value: int) -> StuckAtFault:
        if fanout_count.get(net, 0) > 1:
            return StuckAtFault(net, value, FaultSite.GATE_INPUT, gate_name, pin)
        return StuckAtFault(net, value)

    dropped: dict[StuckAtFault, StuckAtFault] = {}
    for gate in circuit.gates:
        out_value = _DOMINATED_OUTPUT_VALUE.get(gate.gate_type)
        if out_value is None or len(gate.inputs) < 2:
            continue
        if gate.output in po_set:
            continue
        rep = eq_rep_of.get(StuckAtFault(gate.output, out_value))
        if rep is None or rep in dropped:
            continue
        if any(
            m.site is FaultSite.NET and m.net in po_set for m in members[rep]
        ):
            continue
        nc = _NONCONTROLLING_INPUT[gate.gate_type]
        witness: StuckAtFault | None = None
        for pin, net in enumerate(gate.inputs):
            candidate = witness_fault(gate.name, pin, net, nc)
            wrep = eq_rep_of.get(candidate)
            if wrep is not None and wrep != rep:
                witness = candidate
                break
        if witness is not None:
            dropped[rep] = witness

    surviving = [f for f in collapsed if f not in dropped]

    # Re-point faults of dropped classes at their witness's surviving
    # representative, following dominance chains (guaranteed acyclic: each
    # witness sits strictly upstream of the dropped output).
    def surviving_rep(rep: StuckAtFault) -> StuckAtFault:
        seen: set[StuckAtFault] = set()
        while rep in dropped:
            if rep in seen:  # pragma: no cover - chains walk toward inputs
                break
            seen.add(rep)
            rep = eq_rep_of[dropped[rep]]
        return rep

    rep_of = {fault: surviving_rep(rep) for fault, rep in eq_rep_of.items()}
    return DominanceResult(collapsed=surviving, dropped=dropped, rep_of=rep_of)
