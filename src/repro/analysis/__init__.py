"""Static netlist analysis: lint, SCOAP testability, implication screening.

The analysis subsystem runs *before* any simulation or ATPG, over structure
alone:

* :mod:`repro.analysis.lint` — structural linter with typed findings
  (cycles, undriven/multi-driven nets, dangling logic, constants, fanout).
* :mod:`repro.analysis.scoap` — SCOAP CC0/CC1/CO testability measures.
* :mod:`repro.analysis.implication` — direct-implication closure and
  fault-independent identification of provably-untestable stuck-at faults.
* :mod:`repro.analysis.collapse` — dominance fault collapsing layered on the
  equivalence collapsing of :mod:`repro.simulation.faults`.

:func:`analyze_circuit` bundles the passes into one :class:`AnalysisResult`
and is what the experiment pipeline and the ``python -m repro analyze`` CLI
call.  Each pass runs inside an observability span (``analysis.lint``,
``analysis.scoap``, ``analysis.implications``) with counters for findings and
untestable faults, so analysis cost shows up in ``--profile`` output next to
simulation and ATPG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.analysis.collapse import DominanceResult, dominance_collapse
from repro.analysis.implication import (
    ImplicationEngine,
    UntestabilityReport,
    find_untestable_faults,
    propagate_constants,
)
from repro.analysis.lint import (
    HIGH_FANOUT_THRESHOLD,
    LintFinding,
    LintReport,
    Severity,
    lint_circuit,
)
from repro.analysis.scoap import UNOBSERVABLE, ScoapMeasures, compute_scoap
from repro.circuit.netlist import Circuit
from repro.simulation.faults import StuckAtFault, full_fault_universe

__all__ = [
    "AnalysisResult",
    "analyze_circuit",
    # lint
    "HIGH_FANOUT_THRESHOLD",
    "LintFinding",
    "LintReport",
    "Severity",
    "lint_circuit",
    # scoap
    "UNOBSERVABLE",
    "ScoapMeasures",
    "compute_scoap",
    # implications
    "ImplicationEngine",
    "UntestabilityReport",
    "find_untestable_faults",
    "propagate_constants",
    # collapsing
    "DominanceResult",
    "dominance_collapse",
]


@dataclass
class AnalysisResult:
    """Everything one static-analysis pass learned about a circuit.

    Attributes
    ----------
    circuit:
        Name of the analyzed circuit.
    lint:
        The structural lint report (always present).
    scoap:
        SCOAP measures, or None when the circuit has ERROR findings (no
        topological order exists to compute them over).
    untestable:
        Implication-screening report, or None in quick mode / on broken
        circuits.
    """

    circuit: str
    lint: LintReport
    scoap: ScoapMeasures | None = None
    untestable: UntestabilityReport | None = None
    _untestable_set: frozenset[StuckAtFault] = field(
        default=frozenset(), repr=False
    )

    @property
    def ok(self) -> bool:
        """True when the circuit has no ERROR-severity lint findings."""
        return not self.lint.errors

    def untestable_faults(self) -> list[StuckAtFault]:
        """Faults proved untestable (empty when screening did not run)."""
        return list(self.untestable.untestable) if self.untestable else []

    def screen(self, faults: list[StuckAtFault]) -> list[StuckAtFault]:
        """``faults`` minus the statically-proved-untestable ones."""
        if not self._untestable_set:
            return list(faults)
        return [f for f in faults if f not in self._untestable_set]

    def to_dict(self) -> dict[str, object]:
        """JSON-able summary (lint report, SCOAP table, untestable faults)."""
        out: dict[str, object] = {
            "circuit": self.circuit,
            "ok": self.ok,
            "lint": self.lint.to_dict(),
        }
        if self.scoap is not None:
            out["scoap"] = self.scoap.to_dict()
            out["hardest_nets"] = [
                {"net": net, "testability": score}
                for net, score in self.scoap.hardest_nets()
            ]
        if self.untestable is not None:
            out["untestable"] = {
                "n_screened": self.untestable.n_screened,
                "n_untestable": len(self.untestable.untestable),
                "faults": [
                    {"fault": str(f), "reason": self.untestable.reasons[f]}
                    for f in self.untestable.untestable
                ],
                "work": dict(self.untestable.work),
            }
        return out


def analyze_circuit(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    quick: bool = False,
) -> AnalysisResult:
    """Run the static-analysis passes over ``circuit``.

    Lint always runs and never raises.  SCOAP and implication screening need
    a structurally valid circuit and are skipped (left ``None``) when lint
    reports ERROR findings.  ``quick=True`` also skips the implication
    screen — the most expensive pass — which is what CI's smoke run uses.
    ``faults`` limits the screened universe (default: the full universe).
    """
    with obs.span("analysis.lint", circuit=circuit.name):
        lint = lint_circuit(circuit)
        obs.inc("analysis.lint_findings", len(lint.findings))

    result = AnalysisResult(circuit=circuit.name, lint=lint)
    if lint.errors:
        return result

    with obs.span("analysis.scoap", circuit=circuit.name):
        result.scoap = compute_scoap(circuit)

    if quick:
        return result

    with obs.span("analysis.implications", circuit=circuit.name):
        engine = ImplicationEngine(circuit, constants=lint.constants)
        universe = faults if faults is not None else full_fault_universe(circuit)
        result.untestable = find_untestable_faults(circuit, universe, engine)
        obs.inc("analysis.untestable_faults", len(result.untestable.untestable))
    result._untestable_set = frozenset(result.untestable.untestable)
    return result
