"""Static netlist analysis: lint, SCOAP testability, implication screening.

The analysis subsystem runs *before* any simulation or ATPG, over structure
alone:

* :mod:`repro.analysis.lint` — structural linter with typed findings
  (cycles, undriven/multi-driven nets, dangling logic, constants, fanout).
* :mod:`repro.analysis.scoap` — SCOAP CC0/CC1/CO testability measures.
* :mod:`repro.analysis.implication` — direct-implication closure and
  fault-independent identification of provably-untestable stuck-at faults.
* :mod:`repro.analysis.prover` — proof-carrying redundancy prover (static
  learning, recursive learning, unique sensitization) whose verdicts carry
  JSON certificates, each re-verified by the independent checker in
  :mod:`repro.analysis.check`.
* :mod:`repro.analysis.collapse` — dominance fault collapsing layered on the
  equivalence collapsing of :mod:`repro.simulation.faults`.

:func:`analyze_circuit` bundles the passes into one :class:`AnalysisResult`
and is what the experiment pipeline and the ``python -m repro analyze`` CLI
call.  Each pass runs inside an observability span (``analysis.lint``,
``analysis.scoap``, ``analysis.implications``) with counters for findings and
untestable faults, so analysis cost shows up in ``--profile`` output next to
simulation and ATPG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.analysis.collapse import DominanceResult, dominance_collapse
from repro.analysis.implication import (
    ImplicationEngine,
    UntestabilityReport,
    find_untestable_faults,
    propagate_constants,
)
from repro.analysis.lint import (
    HIGH_FANOUT_THRESHOLD,
    LintFinding,
    LintReport,
    Severity,
    lint_circuit,
)
from repro.analysis.prover import (
    ProverResult,
    RedundancyProver,
    netlist_hash,
    prove_untestable,
    static_learning,
)
from repro.analysis.scoap import UNOBSERVABLE, ScoapMeasures, compute_scoap
from repro.circuit.netlist import Circuit
from repro.simulation.faults import StuckAtFault, full_fault_universe

__all__ = [
    "AnalysisResult",
    "analyze_circuit",
    # lint
    "HIGH_FANOUT_THRESHOLD",
    "LintFinding",
    "LintReport",
    "Severity",
    "lint_circuit",
    # scoap
    "UNOBSERVABLE",
    "ScoapMeasures",
    "compute_scoap",
    # implications
    "ImplicationEngine",
    "UntestabilityReport",
    "find_untestable_faults",
    "propagate_constants",
    # prover
    "ProverResult",
    "RedundancyProver",
    "netlist_hash",
    "prove_untestable",
    "static_learning",
    # collapsing
    "DominanceResult",
    "dominance_collapse",
]


@dataclass
class AnalysisResult:
    """Everything one static-analysis pass learned about a circuit.

    Attributes
    ----------
    circuit:
        Name of the analyzed circuit.
    lint:
        The structural lint report (always present).
    scoap:
        SCOAP measures, or None when the circuit has ERROR findings (no
        topological order exists to compute them over).
    untestable:
        Implication-screening report, or None in quick mode / on broken
        circuits.
    """

    circuit: str
    lint: LintReport
    scoap: ScoapMeasures | None = None
    untestable: UntestabilityReport | None = None
    prover: ProverResult | None = None
    _untestable_set: frozenset[StuckAtFault] = field(
        default=frozenset(), repr=False
    )

    @property
    def ok(self) -> bool:
        """True when the circuit has no ERROR-severity lint findings."""
        return not self.lint.errors

    def untestable_faults(self) -> list[StuckAtFault]:
        """Faults proved untestable (screen plus prover, input order)."""
        screen = list(self.untestable.untestable) if self.untestable else []
        if self.prover is None:
            return screen
        seen = set(screen)
        return screen + [f for f in self.prover.proved if f not in seen]

    def screen(self, faults: list[StuckAtFault]) -> list[StuckAtFault]:
        """``faults`` minus the statically-proved-untestable ones."""
        if not self._untestable_set:
            return list(faults)
        return [f for f in faults if f not in self._untestable_set]

    def to_dict(self) -> dict[str, object]:
        """JSON-able summary (lint report, SCOAP table, untestable faults)."""
        out: dict[str, object] = {
            "circuit": self.circuit,
            "ok": self.ok,
            "lint": self.lint.to_dict(),
        }
        if self.scoap is not None:
            out["scoap"] = self.scoap.to_dict()
            out["hardest_nets"] = [
                {"net": net, "testability": score}
                for net, score in self.scoap.hardest_nets()
            ]
        if self.untestable is not None:
            out["untestable"] = {
                "n_screened": self.untestable.n_screened,
                "n_untestable": len(self.untestable.untestable),
                "faults": [
                    {"fault": str(f), "reason": self.untestable.reasons[f]}
                    for f in self.untestable.untestable
                ],
                "work": dict(self.untestable.work),
            }
        if self.prover is not None:
            out["prover"] = self.prover.to_dict()
        return out


def analyze_circuit(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    quick: bool = False,
    prove: bool = False,
    prover_depth: int = 2,
    prover_fault_budget: int | None = None,
) -> AnalysisResult:
    """Run the static-analysis passes over ``circuit``.

    Lint always runs and never raises.  SCOAP and implication screening need
    a structurally valid circuit and are skipped (left ``None``) when lint
    reports ERROR findings.  ``quick=True`` also skips the implication
    screen — the most expensive pass — which is what CI's smoke run uses.
    ``faults`` limits the screened universe (default: the full universe).

    ``prove=True`` additionally runs the proof-carrying redundancy prover
    (sharing the screen's implication engine): static learning plus recursive
    learning to ``prover_depth``, with every verdict certified and re-checked
    by :mod:`repro.analysis.check`.  The proved set — a superset of the
    screen by construction — feeds :meth:`AnalysisResult.screen`, and the
    learned implications in ``result.prover.learned`` are ready to hand to
    PODEM.  ``prover_fault_budget`` caps traced closures spent per fault in
    the recursive stage (None for the module default).
    """
    with obs.span("analysis.lint", circuit=circuit.name):
        lint = lint_circuit(circuit)
        obs.inc("analysis.lint_findings", len(lint.findings))

    result = AnalysisResult(circuit=circuit.name, lint=lint)
    if lint.errors:
        return result

    with obs.span("analysis.scoap", circuit=circuit.name):
        result.scoap = compute_scoap(circuit)

    if quick:
        return result

    with obs.span("analysis.implications", circuit=circuit.name):
        engine = ImplicationEngine(circuit, constants=lint.constants)
        universe = faults if faults is not None else full_fault_universe(circuit)
        result.untestable = find_untestable_faults(circuit, universe, engine)
        obs.inc("analysis.untestable_faults", len(result.untestable.untestable))
    result._untestable_set = frozenset(result.untestable.untestable)

    if prove:
        with obs.span(
            "analysis.prover", circuit=circuit.name, depth=prover_depth
        ):
            prover_kwargs: dict[str, int] = {}
            if prover_fault_budget is not None:
                prover_kwargs["fault_budget"] = prover_fault_budget
            prover = RedundancyProver(
                circuit, depth=prover_depth, engine=engine, **prover_kwargs
            )
            result.prover = prover.prove(universe)
            obs.inc("analysis.proved_faults", len(result.prover.proved))
        result._untestable_set = result._untestable_set | frozenset(
            result.prover.proved
        )
    return result
