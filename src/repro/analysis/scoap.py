"""SCOAP testability measures (Goldstein 1980): CC0/CC1/CO per net.

Combinational controllability ``CC0(n)`` / ``CC1(n)`` estimates the number of
primary-input assignments needed to drive net ``n`` to 0 / 1; combinational
observability ``CO(n)`` estimates the work needed to propagate a value change
on ``n`` to some primary output.  Both are computed structurally — one
forward pass over the levelized gate order for controllability, one backward
pass for observability — with no simulation.

The measures feed the PODEM backtrace (cheapest controlling input first,
hardest non-controlling input first) and the static testability report of
``python -m repro analyze``.  XOR-family controllability is exact for any
fan-in via a parity-cost dynamic programme rather than the common two-input
approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.levelize import levelize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit

__all__ = ["UNOBSERVABLE", "ScoapMeasures", "compute_scoap"]

#: Sentinel observability for nets with no structural path to any primary
#: output.  Finite (not ``inf``) so reports stay integer-typed and JSON-able.
UNOBSERVABLE: int = 2**30


@dataclass(frozen=True)
class ScoapMeasures:
    """SCOAP testability numbers for one circuit.

    Attributes
    ----------
    cc0, cc1:
        Combinational 0-/1-controllability per net (primary inputs cost 1).
    co:
        Combinational observability per net: 0 at primary outputs, the
        minimum over reader pins elsewhere, :data:`UNOBSERVABLE` for nets
        that reach no primary output.
    co_pin:
        Observability of each gate input pin, keyed by ``(gate_name, pin)``.
    """

    cc0: dict[str, int] = field(default_factory=dict)
    cc1: dict[str, int] = field(default_factory=dict)
    co: dict[str, int] = field(default_factory=dict)
    co_pin: dict[tuple[str, int], int] = field(default_factory=dict)

    def controllability(self, net: str) -> tuple[int, int]:
        """``(CC0, CC1)`` of ``net``."""
        return self.cc0[net], self.cc1[net]

    def testability(self, net: str) -> int:
        """Combined difficulty ``CC0 + CC1 + CO`` (larger = harder to test)."""
        return self.cc0[net] + self.cc1[net] + self.co[net]

    def hardest_nets(self, n: int = 5) -> list[tuple[str, int]]:
        """The ``n`` nets with the worst combined testability, worst first."""
        ranked = sorted(
            ((net, self.testability(net)) for net in self.cc0),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:n]

    def to_dict(self) -> dict[str, dict[str, int]]:
        """JSON-able per-net table ``{net: {cc0, cc1, co}}``."""
        return {
            net: {"cc0": self.cc0[net], "cc1": self.cc1[net], "co": self.co[net]}
            for net in self.cc0
        }


def _parity_costs(pairs: list[tuple[int, int]]) -> tuple[int, int]:
    """(min cost of even parity, min cost of odd parity) over input literals.

    Dynamic programme over the inputs: exact n-input XOR controllability,
    where each input contributes either its CC0 (keeping parity) or its CC1
    (flipping parity).
    """
    even, odd = 0, UNOBSERVABLE
    for cc0, cc1 in pairs:
        even, odd = min(even + cc0, odd + cc1), min(even + cc1, odd + cc0)
    return even, odd


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """Compute SCOAP CC0/CC1/CO for every net of ``circuit``.

    One forward pass (controllability, levelized order) and one backward
    pass (observability, reverse order).  Raises ``CircuitError`` via
    :func:`~repro.circuit.levelize.levelize` on cyclic or undriven circuits.
    """
    order = levelize(circuit)

    cc0: dict[str, int] = dict.fromkeys(circuit.primary_inputs, 1)
    cc1: dict[str, int] = dict.fromkeys(circuit.primary_inputs, 1)
    for gate in order:
        in0 = [cc0[n] for n in gate.inputs]
        in1 = [cc1[n] for n in gate.inputs]
        gt = gate.gate_type
        if gt in (GateType.AND, GateType.NAND):
            core0 = min(in0) + 1
            core1 = sum(in1) + 1
        elif gt in (GateType.OR, GateType.NOR):
            core0 = sum(in0) + 1
            core1 = min(in1) + 1
        elif gt in (GateType.XOR, GateType.XNOR):
            even, odd = _parity_costs(list(zip(in0, in1)))
            core0, core1 = even + 1, odd + 1
        else:  # NOT / BUF
            core0, core1 = in0[0] + 1, in1[0] + 1
        if gt in (GateType.NAND, GateType.NOR, GateType.XNOR, GateType.NOT):
            cc0[gate.output], cc1[gate.output] = core1, core0
        else:
            cc0[gate.output], cc1[gate.output] = core0, core1

    po_set = set(circuit.primary_outputs)
    co: dict[str, int] = {
        net: 0 if net in po_set else UNOBSERVABLE for net in cc0
    }
    co_pin: dict[tuple[str, int], int] = {}
    for gate in reversed(order):
        out_co = co[gate.output]
        gt = gate.gate_type
        for pin, net in enumerate(gate.inputs):
            if out_co >= UNOBSERVABLE:
                pin_co = UNOBSERVABLE
            elif gt in (GateType.AND, GateType.NAND):
                side = sum(cc1[n] for i, n in enumerate(gate.inputs) if i != pin)
                pin_co = out_co + side + 1
            elif gt in (GateType.OR, GateType.NOR):
                side = sum(cc0[n] for i, n in enumerate(gate.inputs) if i != pin)
                pin_co = out_co + side + 1
            elif gt in (GateType.XOR, GateType.XNOR):
                side = sum(
                    min(cc0[n], cc1[n])
                    for i, n in enumerate(gate.inputs)
                    if i != pin
                )
                pin_co = out_co + side + 1
            else:  # NOT / BUF
                pin_co = out_co + 1
            co_pin[(gate.name, pin)] = pin_co
            if pin_co < co[net]:
                co[net] = pin_co
    return ScoapMeasures(cc0=cc0, cc1=cc1, co=co, co_pin=co_pin)
