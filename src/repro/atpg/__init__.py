"""Test generation substrate: PRPG, random ATPG, PODEM, compaction."""

from repro.atpg.bridge_atpg import (
    BridgeAtpgResult,
    FeedbackBridgeError,
    build_bridge_miter,
    generate_bridge_tests,
)
from repro.atpg.compaction import compact_test_set
from repro.atpg.patterns import Lfsr, TestSet, random_patterns
from repro.atpg.podem import (
    AtpgOutcome,
    AtpgStatus,
    DeterministicAtpgResult,
    PodemAtpg,
    generate_deterministic_tests,
    scoap_controllability,
)
from repro.atpg.random_atpg import RandomAtpgResult, generate_random_tests

__all__ = [
    "AtpgOutcome",
    "AtpgStatus",
    "BridgeAtpgResult",
    "DeterministicAtpgResult",
    "FeedbackBridgeError",
    "Lfsr",
    "PodemAtpg",
    "RandomAtpgResult",
    "TestSet",
    "build_bridge_miter",
    "compact_test_set",
    "generate_bridge_tests",
    "generate_deterministic_tests",
    "generate_random_tests",
    "random_patterns",
    "scoap_controllability",
]
