"""Test-pattern containers and pseudo-random pattern sources.

The paper's experiment applies a sequence ``t_1 .. t_N`` whose prefix is
random (a PRPG, as in self-test) and whose tail is deterministically generated
for the remaining undetected stuck-at faults.  This module provides the
pattern containers and the PRPG; the generators live in
:mod:`repro.atpg.random_atpg` and :mod:`repro.atpg.podem`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["TestSet", "Lfsr", "random_patterns"]

#: Primitive polynomial taps (XOR feedback positions) per LFSR width.
#: Each entry yields a maximal-length sequence of 2**n - 1 states.
_PRIMITIVE_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    24: (24, 23, 22, 17),
    32: (32, 31, 30, 10),
}


@dataclass
class TestSet:
    """An ordered sequence of input vectors with provenance labels.

    Attributes
    ----------
    n_inputs:
        Vector width (number of primary inputs).
    patterns:
        The vectors, each a list of 0/1 of length ``n_inputs``.
    sources:
        Parallel list recording how each vector was produced
        (``"random"`` or ``"deterministic"``).
    """

    n_inputs: int
    patterns: list[list[int]] = field(default_factory=list)
    sources: list[str] = field(default_factory=list)

    def append(self, pattern: Sequence[int], source: str = "random") -> None:
        """Add one vector with its provenance label."""
        if len(pattern) != self.n_inputs:
            raise ValueError(
                f"pattern width {len(pattern)} != n_inputs {self.n_inputs}"
            )
        self.patterns.append([int(v) for v in pattern])
        self.sources.append(source)

    def extend(self, patterns: Sequence[Sequence[int]], source: str) -> None:
        """Add many vectors sharing one provenance label."""
        for pattern in patterns:
            self.append(pattern, source)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.patterns)

    def __getitem__(self, index: int) -> list[int]:
        return self.patterns[index]

    @property
    def n_random(self) -> int:
        """Number of vectors labelled random."""
        return sum(1 for s in self.sources if s == "random")

    @property
    def n_deterministic(self) -> int:
        """Number of vectors labelled deterministic."""
        return sum(1 for s in self.sources if s == "deterministic")


class Lfsr:
    """A Fibonacci LFSR pseudo-random pattern generator.

    Produces maximal-length sequences for the tap table widths; other widths
    fall back to a seeded :mod:`random` stream (still reproducible).
    """

    def __init__(self, width: int, seed: int = 1):
        if width < 1:
            raise ValueError("LFSR width must be positive")
        self.width = width
        taps = _PRIMITIVE_TAPS.get(width)
        self._taps = taps
        self._rng = random.Random(seed) if taps is None else None
        mask = (1 << width) - 1
        self.state = (seed & mask) or 1

    def step(self) -> int:
        """Advance one state and return the new state as an int."""
        if self._taps is None:
            self.state = self._rng.getrandbits(self.width) or 1
            return self.state
        feedback = 0
        for tap in self._taps:
            feedback ^= (self.state >> (tap - 1)) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        if self.state == 0:
            self.state = 1
        return self.state

    def pattern(self) -> list[int]:
        """Advance and return the state as a bit vector (LSB first)."""
        state = self.step()
        return [(state >> i) & 1 for i in range(self.width)]

    def patterns(self, count: int) -> list[list[int]]:
        """Generate ``count`` consecutive patterns."""
        return [self.pattern() for _ in range(count)]


def random_patterns(
    n_inputs: int, count: int, seed: int = 1234
) -> list[list[int]]:
    """Uniform random vectors from a seeded PRNG (independent bits)."""
    rng = random.Random(seed)
    return [
        [rng.randint(0, 1) for _ in range(n_inputs)] for _ in range(count)
    ]
