"""Random-pattern test generation with coverage tracking.

Mirrors the paper's setup: "the first vectors are random vectors", achieving
more than 80 % stuck-at coverage before a deterministic generator tops up the
test set.  Generation stops when a target coverage is reached, when a run of
consecutive useless vectors exceeds a patience limit, or at a hard cap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.atpg.patterns import TestSet, random_patterns
from repro.circuit.netlist import Circuit
from repro.obs.events import ProgressEvent
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import StuckAtFault, collapse_faults

__all__ = ["RandomAtpgResult", "generate_random_tests"]


@dataclass
class RandomAtpgResult:
    """Outcome of random-pattern generation.

    Attributes
    ----------
    test_set:
        The accepted vectors (useless trailing vectors are kept: the paper's
        coverage curves need the full applied sequence, hits or not).
    detected:
        Faults detected by the sequence.
    undetected:
        Faults still undetected (input to deterministic ATPG).
    coverage:
        Final stuck-at coverage over the provided fault list.
    """

    test_set: TestSet
    detected: list[StuckAtFault]
    undetected: list[StuckAtFault]
    coverage: float


def generate_random_tests(
    circuit: Circuit,
    faults: list[StuckAtFault] | None = None,
    target_coverage: float = 0.90,
    max_patterns: int = 2048,
    patience: int = 256,
    seed: int = 1234,
    word_width: int | None = None,
) -> RandomAtpgResult:
    """Generate random vectors until coverage, patience, or cap is reached.

    Parameters
    ----------
    circuit:
        The combinational circuit under test.
    faults:
        Fault list to cover; defaults to the equivalence-collapsed universe.
    target_coverage:
        Stop once detected/total reaches this fraction.
    max_patterns:
        Hard cap on the number of generated vectors.
    patience:
        Stop after this many consecutive vectors that detect nothing new.
    seed:
        PRNG seed (results are fully reproducible).
    word_width:
        Packed-word width of the underlying fault simulator; defaults to the
        engine default.  Generation batches stay at 64 vectors so stopping
        decisions (and therefore the generated sequence) are width-invariant.
    """
    if faults is None:
        faults = collapse_faults(circuit)
    if word_width is None:
        simulator = FaultSimulator(circuit)
    else:
        simulator = FaultSimulator(circuit, width=word_width)
    n_inputs = len(circuit.primary_inputs)
    test_set = TestSet(n_inputs=n_inputs)

    remaining = list(faults)
    detected: list[StuckAtFault] = []
    useless_run = 0
    total = len(faults)

    batch = 64
    generated = 0
    with obs.span(
        "atpg.random", n_faults=total, target_coverage=target_coverage
    ) as random_span:
        while (
            remaining
            and generated < max_patterns
            and useless_run < patience
            and (total == 0 or len(detected) / total < target_coverage)
        ):
            n_here = min(batch, max_patterns - generated)
            vectors = random_patterns(n_inputs, n_here, seed=seed + generated)
            generated += n_here
            result = simulator.run(vectors, faults=remaining)
            test_set.extend(vectors, "random")
            if result.first_detection:
                # Count the useless tail of this batch for patience accounting.
                last_hit = max(result.first_detection.values())
                useless_run = n_here - last_hit
                hits = set(result.first_detection)
                detected.extend(f for f in remaining if f in hits)
                remaining = [f for f in remaining if f not in hits]
            else:
                useless_run += n_here
            if obs.events_enabled():
                obs.emit(
                    ProgressEvent(
                        stage="random_atpg",
                        completed=generated,
                        total=max_patterns,
                        unit="patterns",
                        data={
                            "faults_remaining": len(remaining),
                            "detection_rate": (
                                len(detected) / total if total else 1.0
                            ),
                            "useless_run": useless_run,
                        },
                    )
                )

        coverage = 1.0 if total == 0 else len(detected) / total
        random_span.set(n_patterns=generated, coverage=round(coverage, 4))
    obs.inc("random_atpg.patterns_generated", generated)
    obs.inc("random_atpg.faults_detected", len(detected))
    return RandomAtpgResult(
        test_set=test_set,
        detected=detected,
        undetected=remaining,
        coverage=coverage,
    )
