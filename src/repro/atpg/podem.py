"""PODEM deterministic test generation for single stuck-at faults.

The paper tops off its random prefix with vectors "deterministically generated
using the FAN algorithm"; this module plays that role with PODEM (Goel 1981),
which shares FAN's objective/backtrace structure.  Implication is a two-channel
(good/faulty) three-valued simulation, backtrace is guided by SCOAP
controllability, and an X-path check prunes dead branches early.

The public entry points are :class:`PodemAtpg` for a single fault and
:func:`generate_deterministic_tests` to extend a test set over a fault list
with fault dropping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Collection, Mapping

from repro import obs
from repro.analysis.scoap import ScoapMeasures, compute_scoap
from repro.atpg.patterns import TestSet
from repro.circuit.levelize import levelize
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit, Gate
from repro.obs.events import ProgressEvent
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import FaultSite, StuckAtFault

__all__ = [
    "PodemAtpg",
    "AtpgStatus",
    "AtpgOutcome",
    "DeterministicAtpgResult",
    "generate_deterministic_tests",
    "scoap_controllability",
]

#: Three-valued signal levels; X is "unassigned / unknown".
ZERO, ONE, X = 0, 1, 2

#: Learned implications, as produced by ``repro.analysis.prover.static_learning``:
#: antecedent ``(net, value)`` -> consequent literals, each a tautology of the
#: fault-free circuit.
LearnedImplications = Mapping[tuple[str, int], tuple[tuple[str, int], ...]]


def _eval3(gate_type: GateType, values: list[int]) -> int:
    """Three-valued gate evaluation over {0, 1, X}."""
    if gate_type in (GateType.AND, GateType.NAND):
        if any(v == ZERO for v in values):
            core = ZERO
        elif any(v == X for v in values):
            core = X
        else:
            core = ONE
        return _inv(core) if gate_type is GateType.NAND else core
    if gate_type in (GateType.OR, GateType.NOR):
        if any(v == ONE for v in values):
            core = ONE
        elif any(v == X for v in values):
            core = X
        else:
            core = ZERO
        return _inv(core) if gate_type is GateType.NOR else core
    if gate_type in (GateType.XOR, GateType.XNOR):
        if any(v == X for v in values):
            return X
        core = 0
        for v in values:
            core ^= v
        return _inv(core) if gate_type is GateType.XNOR else core
    if gate_type is GateType.NOT:
        return _inv(values[0])
    if gate_type is GateType.BUF:
        return values[0]
    raise ValueError(f"unknown gate type {gate_type!r}")


def _inv(value: int) -> int:
    return X if value == X else 1 - value


def scoap_controllability(circuit: Circuit) -> dict[str, tuple[int, int]]:
    """SCOAP combinational controllability (CC0, CC1) per net.

    Thin wrapper over :func:`repro.analysis.scoap.compute_scoap` kept for the
    backtrace's ``{net: (cc0, cc1)}`` view; the full measures (including
    observability) live in the analysis subsystem.
    """
    measures = compute_scoap(circuit)
    return {net: (measures.cc0[net], measures.cc1[net]) for net in measures.cc0}


class AtpgStatus:
    """Per-fault ATPG outcome labels."""

    TESTED = "tested"
    REDUNDANT = "redundant"  # proved untestable (search exhausted)
    ABORTED = "aborted"      # backtrack limit hit


@dataclass
class AtpgOutcome:
    """Result of one PODEM call: a status and, when tested, a vector."""

    status: str
    pattern: list[int] | None = None
    backtracks: int = 0


class PodemAtpg:
    """PODEM test generator bound to one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 2000,
        scoap: ScoapMeasures | None = None,
        learned: LearnedImplications | None = None,
    ):
        circuit.validate()
        self.circuit = circuit
        self.order = levelize(circuit)
        self.driver = {g.output: g for g in circuit.gates}
        self.fanout = circuit.fanout_map()
        if scoap is None:
            scoap = compute_scoap(circuit)
        self.cc = {
            net: (scoap.cc0[net], scoap.cc1[net]) for net in scoap.cc0
        }
        self.backtrack_limit = backtrack_limit
        self.learned: dict[tuple[str, int], tuple[tuple[str, int], ...]] = (
            dict(learned) if learned else {}
        )
        #: Cumulative counts over all :meth:`generate` calls: decision points
        #: failed early because learned implications pin the fault site to its
        #: stuck value, and D-frontier gates pruned because a learned
        #: implication pins a side input to the controlling value.
        self.learned_conflicts = 0
        self.learned_prunes = 0
        self._pi_index = {pi: i for i, pi in enumerate(circuit.primary_inputs)}
        self._gate_by_name = {g.name: g for g in circuit.gates}
        self._support_cache: dict[str, tuple[str, ...]] = {}
        self._cone_cache: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------------
    # Two-channel implication
    # ------------------------------------------------------------------
    def _imply(
        self, fault: StuckAtFault, assignment: dict[str, int]
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Simulate good and faulty channels from a partial PI assignment."""
        good: dict[str, int] = {}
        faulty: dict[str, int] = {}
        for pi in self.circuit.primary_inputs:
            value = assignment.get(pi, X)
            good[pi] = value
            faulty[pi] = value
        if fault.site is FaultSite.NET and fault.net in faulty:
            faulty[fault.net] = fault.value

        for gate in self.order:
            g_ops = [good[n] for n in gate.inputs]
            f_ops = []
            for pin, net in enumerate(gate.inputs):
                if (
                    fault.site is FaultSite.GATE_INPUT
                    and gate.name == fault.gate
                    and pin == fault.pin
                ):
                    f_ops.append(fault.value)
                else:
                    f_ops.append(faulty[net])
            good[gate.output] = _eval3(gate.gate_type, g_ops)
            out_f = _eval3(gate.gate_type, f_ops)
            if fault.site is FaultSite.NET and gate.output == fault.net:
                out_f = fault.value
            faulty[gate.output] = out_f
        return good, faulty

    # ------------------------------------------------------------------
    # Search support
    # ------------------------------------------------------------------
    def _test_found(self, good: dict[str, int], faulty: dict[str, int]) -> bool:
        return any(
            good[po] != X and faulty[po] != X and good[po] != faulty[po]
            for po in self.circuit.primary_outputs
        )

    def _d_frontier(
        self,
        fault: StuckAtFault,
        good: dict[str, int],
        faulty: dict[str, int],
    ) -> list[Gate]:
        frontier = []
        for gate in self.order:
            out_g, out_f = good[gate.output], faulty[gate.output]
            if out_g != X and out_f != X:
                continue
            has_d = any(
                good[n] != X
                and faulty[n] != X
                and good[n] != faulty[n]
                for n in gate.inputs
            )
            # For a pin fault the discrepancy originates *inside* the faulted
            # gate (the net itself is healthy), so the gate joins the frontier
            # as soon as the pin's net carries the activating value.
            if (
                not has_d
                and fault.site is FaultSite.GATE_INPUT
                and gate.name == fault.gate
                and good[fault.net] == 1 - fault.value
            ):
                has_d = True
            if has_d:
                frontier.append(gate)
        return frontier

    def _x_path_exists(
        self,
        frontier: list[Gate],
        good: dict[str, int],
        faulty: dict[str, int],
    ) -> bool:
        """True when some D-frontier output can still reach a PO through X nets."""
        po_set = set(self.circuit.primary_outputs)
        seen: set[str] = set()
        stack = [g.output for g in frontier]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in po_set:
                return True
            for reader in self.fanout.get(net, []):
                out = reader.output
                if out in seen:
                    continue
                if good[out] == X or faulty[out] == X:
                    stack.append(out)
        return False

    # ------------------------------------------------------------------
    # Learned-implication support
    # ------------------------------------------------------------------
    def _learned_pins(self, good: dict[str, int]) -> dict[str, int]:
        """Good-channel values pinned by closing under learned implications.

        Every learned implication is a tautology of the fault-free circuit,
        so if ``net=v`` is determined in the good channel, every completion
        of the current partial assignment also satisfies the implication's
        consequents — and everything those consequents force through the
        gates.  The returned map extends ``good`` to a fixpoint of learned
        consequents and three-valued forward evaluation; entries that are X
        in ``good`` but definite here are values the current assignment
        forces in *every* completion, which the search can fail against.
        """
        pins = dict(good)
        stack = [(n, v) for n, v in pins.items() if v != X]
        while stack:
            net, value = stack.pop()
            for c_net, c_value in self.learned.get((net, value), ()):
                if pins.get(c_net, X) == X:
                    pins[c_net] = c_value
                    stack.append((c_net, c_value))
            for gate in self.fanout.get(net, []):
                if pins[gate.output] != X:
                    continue
                out = _eval3(
                    gate.gate_type, [pins[n] for n in gate.inputs]
                )
                if out != X:
                    pins[gate.output] = out
                    stack.append((gate.output, out))
        return pins

    def _effect_cone(self, source: str) -> frozenset[str]:
        """Nets downstream of the fault effect's origin (inclusive)."""
        cached = self._cone_cache.get(source)
        if cached is None:
            from repro.circuit.levelize import output_cone

            cached = frozenset(output_cone(self.circuit, source))
            self._cone_cache[source] = cached
        return cached

    def _prune_frontier(
        self,
        frontier: list[Gate],
        good: dict[str, int],
        pins: dict[str, int],
        cone: frozenset[str],
    ) -> list[Gate]:
        """Drop frontier gates a learned pin provably blocks.

        A gate cannot propagate the effect when a side input outside the
        fault's output cone (so its faulty value always equals its good
        value) is still X but pinned to the gate's controlling value: every
        completion controls the gate identically in both channels.
        """
        kept = []
        for gate in frontier:
            controlling = _controlling_value(gate.gate_type)
            blocked = controlling is not None and any(
                good[n] == X and n not in cone and pins.get(n) == controlling
                for n in gate.inputs
            )
            if blocked:
                self.learned_prunes += 1
            else:
                kept.append(gate)
        return kept

    def _objective(
        self,
        fault: StuckAtFault,
        good: dict[str, int],
        faulty: dict[str, int],
        frontier: list[Gate] | None = None,
    ) -> tuple[str, int] | None:
        site_value = good[fault.net]
        if site_value == X:
            return fault.net, 1 - fault.value
        if frontier is None:
            frontier = self._d_frontier(fault, good, faulty)
        if not frontier:
            return None
        frontier.sort(key=lambda g: self.cc[g.output][0] + self.cc[g.output][1])
        for gate in frontier:
            noncontrolling = _noncontrolling_value(gate.gate_type)
            for net in gate.inputs:
                if good[net] == X:
                    return net, noncontrolling if noncontrolling is not None else ZERO
        return None

    def _backtrace(
        self, net: str, value: int, good: dict[str, int]
    ) -> tuple[str, int] | None:
        """Walk the objective back to an unassigned primary input."""
        for _ in range(10 * (len(self.circuit.gates) + 1)):
            gate = self.driver.get(net)
            if gate is None:  # primary input
                return (net, value) if good[net] == X else None
            gt = gate.gate_type
            inverted = gt in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)
            core = value ^ 1 if inverted else value
            x_inputs = [n for n in gate.inputs if good[n] == X]
            if not x_inputs:
                return None
            if gt in (GateType.NOT, GateType.BUF):
                net, value = gate.inputs[0], core
                continue
            controlling = ZERO if gt in (GateType.AND, GateType.NAND) else ONE
            if gt in (GateType.XOR, GateType.XNOR):
                # Pick the easiest X input; target parity of core against the
                # definite inputs, defaulting to core when others are X.
                definite = [good[n] for n in gate.inputs if good[n] != X]
                parity = 0
                for v in definite:
                    parity ^= v
                target = core ^ parity if len(x_inputs) == 1 else core
                chosen = min(x_inputs, key=lambda n: min(self.cc[n]))
                net, value = chosen, target
                continue
            if core == controlling:
                # One input at the controlling value suffices: easiest first.
                chosen = min(x_inputs, key=lambda n: self.cc[n][controlling])
                net, value = chosen, controlling
            else:
                # All inputs must be non-controlling: hardest first.
                chosen = max(x_inputs, key=lambda n: self.cc[n][1 - controlling])
                net, value = chosen, 1 - controlling
        return None

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------
    def generate(self, fault: StuckAtFault, fill: int | None = 0) -> AtpgOutcome:
        """Search for a vector detecting ``fault``.

        Parameters
        ----------
        fault:
            The target stuck-at fault.
        fill:
            Value used for PIs left unassigned by the search (0, 1, or None
            to leave them 0 — callers wanting random fill should post-process
            via :func:`fill_dont_cares`).

        Returns
        -------
        AtpgOutcome
            ``TESTED`` with a full vector, ``REDUNDANT`` when the search space
            is exhausted, or ``ABORTED`` at the backtrack limit.
        """
        assignment: dict[str, int] = {}
        decisions: list[tuple[str, int, bool]] = []  # (pi, value, tried_both)
        backtracks = 0
        effect_source = fault.net
        if fault.site is FaultSite.GATE_INPUT and fault.gate is not None:
            effect_source = self._gate_by_name[fault.gate].output
        cone = (
            self._effect_cone(effect_source) if self.learned else frozenset()
        )

        while True:
            good, faulty = self._imply(fault, assignment)
            if self._test_found(good, faulty):
                return AtpgOutcome(
                    AtpgStatus.TESTED,
                    self._complete_pattern(assignment, fill),
                    backtracks,
                )
            pins = self._learned_pins(good) if self.learned else {}

            failed = False
            frontier: list[Gate] | None = None
            site_value = good[fault.net]
            if site_value != X and site_value == fault.value:
                failed = True  # activation impossible under this assignment
            elif site_value == X and pins.get(fault.net) == fault.value:
                # Learned implications pin the site to its stuck value in
                # every completion of this assignment: activation impossible.
                self.learned_conflicts += 1
                failed = True
            else:
                frontier = self._d_frontier(fault, good, faulty)
                if pins and frontier:
                    frontier = self._prune_frontier(frontier, good, pins, cone)
                activated = site_value != X
                if activated and not frontier:
                    failed = True
                elif frontier and not self._x_path_exists(frontier, good, faulty):
                    failed = True

            if not failed:
                step = None
                objective = self._objective(fault, good, faulty, frontier)
                if objective is not None:
                    step = self._backtrace(objective[0], objective[1], good)
                if step is None:
                    # Heuristic dead-end (e.g. the frontier's side inputs are
                    # X only in the faulty channel).  That is NOT a proof of
                    # failure — fall back to deciding any unassigned primary
                    # input of the fault's support cone, keeping REDUNDANT
                    # verdicts sound.
                    step = self._fallback_decision(fault, assignment)
                if step is None:
                    failed = True  # support exhausted: genuinely dead
                else:
                    pi, value = step
                    assignment[pi] = value
                    decisions.append((pi, value, False))
                    continue

            # Backtrack: flip the most recent single-tried decision.
            backtracks += 1
            if backtracks > self.backtrack_limit:
                return AtpgOutcome(AtpgStatus.ABORTED, None, backtracks)
            while decisions:
                pi, value, tried_both = decisions.pop()
                if tried_both:
                    del assignment[pi]
                    continue
                assignment[pi] = 1 - value
                decisions.append((pi, 1 - value, True))
                break
            else:
                return AtpgOutcome(AtpgStatus.REDUNDANT, None, backtracks)

    def _fallback_decision(
        self, fault: StuckAtFault, assignment: dict[str, int]
    ) -> tuple[str, int] | None:
        """Next unassigned PI in the fault's support cone, or None.

        The support cone — every PI that can influence the fault's activation
        or observation — is the sound decision universe: exhausting it proves
        redundancy.
        """
        for pi in self._support(fault.net):
            if pi not in assignment:
                return pi, ZERO
        return None

    def _support(self, net: str) -> tuple[str, ...]:
        cached = self._support_cache.get(net)
        if cached is not None:
            return cached
        from repro.circuit.levelize import input_cone, output_cone

        pis = set(self.circuit.primary_inputs)
        support: set[str] = set()
        for downstream in output_cone(self.circuit, net):
            support.update(input_cone(self.circuit, downstream) & pis)
        ordered = tuple(
            pi for pi in self.circuit.primary_inputs if pi in support
        )
        self._support_cache[net] = ordered
        return ordered

    def _complete_pattern(
        self, assignment: dict[str, int], fill: int | None
    ) -> list[int]:
        fill_value = 0 if fill is None else fill
        return [
            assignment.get(pi, fill_value)
            for pi in self.circuit.primary_inputs
        ]


def _noncontrolling_value(gate_type: GateType) -> int | None:
    if gate_type in (GateType.AND, GateType.NAND):
        return ONE
    if gate_type in (GateType.OR, GateType.NOR):
        return ZERO
    return None  # XOR family and single-input gates have no controlling value


def _controlling_value(gate_type: GateType) -> int | None:
    noncontrolling = _noncontrolling_value(gate_type)
    return None if noncontrolling is None else 1 - noncontrolling


@dataclass
class DeterministicAtpgResult:
    """Outcome of deterministic top-off generation over a fault list."""

    test_set: TestSet
    tested: list[StuckAtFault] = field(default_factory=list)
    redundant: list[StuckAtFault] = field(default_factory=list)
    aborted: list[StuckAtFault] = field(default_factory=list)
    skipped_untestable: list[StuckAtFault] = field(default_factory=list)
    backtracks: int = 0
    learned_prunes: int = 0
    learned_conflicts: int = 0

    @property
    def coverage_of_targeted(self) -> float:
        """Detected fraction of the targeted (non-redundant) faults."""
        testable = len(self.tested) + len(self.aborted)
        return 1.0 if testable == 0 else len(self.tested) / testable


def generate_deterministic_tests(
    circuit: Circuit,
    faults: list[StuckAtFault],
    backtrack_limit: int = 2000,
    fill: int = 0,
    untestable: Collection[StuckAtFault] | None = None,
    scoap: ScoapMeasures | None = None,
    learned: LearnedImplications | None = None,
) -> DeterministicAtpgResult:
    """Run PODEM over ``faults`` with fault dropping.

    Each generated vector is fault-simulated against the remaining targets so
    one vector can retire several faults, matching the classic flow the paper
    uses after its random prefix.  Faults listed in ``untestable`` — proved
    undetectable by the static implication screen — are recorded in
    ``skipped_untestable`` without spending any search on them; ``scoap``
    passes precomputed testability measures to the backtrace; ``learned``
    hands the prover's static learned implications to the search, where they
    fail impossible activations early and prune blocked D-frontier gates
    (the per-run effect is reported in ``backtracks`` / ``learned_prunes`` /
    ``learned_conflicts``).
    """
    atpg = PodemAtpg(
        circuit, backtrack_limit=backtrack_limit, scoap=scoap, learned=learned
    )
    simulator = FaultSimulator(circuit)
    result = DeterministicAtpgResult(
        test_set=TestSet(n_inputs=len(circuit.primary_inputs))
    )
    skip = frozenset(untestable) if untestable else frozenset()
    remaining = []
    for fault in faults:
        if fault in skip:
            result.skipped_untestable.append(fault)
        else:
            remaining.append(fault)
    if result.skipped_untestable:
        obs.inc("podem.skipped_untestable", len(result.skipped_untestable))
    n_targets = len(remaining)
    targets_done = 0
    with obs.span("atpg.podem", n_targets=n_targets) as podem_span:
        while remaining:
            target = remaining.pop(0)
            outcome = atpg.generate(target, fill=fill)
            targets_done += 1
            # Retired targets (dropped by simulation below) also count, so
            # report progress as targets *resolved*, not searches run.
            if obs.events_enabled() and (
                targets_done % 16 == 0 or len(remaining) <= 1
            ):
                obs.emit(
                    ProgressEvent(
                        stage="podem",
                        completed=n_targets - len(remaining) - 1,
                        total=n_targets,
                        unit="targets",
                        data={
                            "faults_remaining": len(remaining),
                            "vectors": len(result.test_set),
                            "aborted": len(result.aborted),
                        },
                    )
                )
            obs.inc("podem.backtracks", outcome.backtracks)
            result.backtracks += outcome.backtracks
            if outcome.status == AtpgStatus.REDUNDANT:
                obs.inc("podem.redundant")
                result.redundant.append(target)
                continue
            if outcome.status == AtpgStatus.ABORTED:
                obs.inc("podem.aborted")
                result.aborted.append(target)
                continue
            obs.inc("podem.tested")
            vector = outcome.pattern
            assert vector is not None
            result.test_set.append(vector, "deterministic")
            result.tested.append(target)
            if remaining:
                sim = simulator.run([vector], faults=remaining, drop_detected=False)
                dropped = set(sim.first_detection)
                result.tested.extend(f for f in remaining if f in dropped)
                remaining = [f for f in remaining if f not in dropped]
        result.learned_prunes = atpg.learned_prunes
        result.learned_conflicts = atpg.learned_conflicts
        if atpg.learned:
            obs.inc("podem.learned_prunes", atpg.learned_prunes)
            obs.inc("podem.learned_conflicts", atpg.learned_conflicts)
        podem_span.set(
            n_vectors=len(result.test_set),
            n_redundant=len(result.redundant),
            n_aborted=len(result.aborted),
            n_skipped_untestable=len(result.skipped_untestable),
            n_backtracks=result.backtracks,
        )
    return result
