"""Static test-set compaction.

Reverse-order pass: drop a vector when the remaining set still detects every
fault the full set detected.  Used by the ablation benches to study how test
length interacts with the coverage-growth curves; the paper's main experiment
applies the *uncompacted* sequence, since its curves are per-vector.
"""

from __future__ import annotations

from repro.atpg.patterns import TestSet
from repro.circuit.netlist import Circuit
from repro.simulation.fault_sim import FaultSimulator
from repro.simulation.faults import StuckAtFault

__all__ = ["compact_test_set"]


def compact_test_set(
    circuit: Circuit,
    test_set: TestSet,
    faults: list[StuckAtFault],
) -> TestSet:
    """Return a subsequence of ``test_set`` with equal fault detection.

    Greedy reverse-order elimination: each vector is tentatively removed and
    kept out if coverage of the originally-detected faults is preserved.
    Complexity is O(vectors x fault-sim); fine at benchmark scale.
    """
    simulator = FaultSimulator(circuit)
    baseline = simulator.run(test_set.patterns, faults=faults)
    must_detect = set(baseline.first_detection)

    kept_indices = list(range(len(test_set)))
    for candidate in reversed(range(len(test_set))):
        trial = [i for i in kept_indices if i != candidate]
        patterns = [test_set.patterns[i] for i in trial]
        result = simulator.run(patterns, faults=list(must_detect))
        if set(result.first_detection) == must_detect:
            kept_indices = trial

    compacted = TestSet(n_inputs=test_set.n_inputs)
    for i in kept_indices:
        compacted.append(test_set.patterns[i], test_set.sources[i])
    return compacted
