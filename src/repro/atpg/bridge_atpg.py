"""Deterministic test generation for bridging faults.

The paper's experiment shows that a 100 %-stuck-at test set still misses
part of the bridge population (it is what keeps theta below theta_max at
T = 1).  This module closes that gap the way later industrial flows did:
generate vectors *targeted at* specific bridges.

Construction: a **miter**.  The good circuit and a faulty copy (with the two
bridged nets replaced by their wired-resolution function) share the primary
inputs; each output pair feeds an XOR, and the XORs feed an OR tree whose
single output ``DIFF`` is 1 exactly when the bridge is detected.  Running
the existing PODEM on ``DIFF stuck-at-0`` then either returns a detecting
vector or *proves* the bridge untestable under the chosen dominance model.

Candidate vectors should be confirmed against the switch-level simulator
(whose per-vector strength resolution is finer than the dominance
abstraction); see ``examples/bridge_test_topoff.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atpg.podem import AtpgStatus, PodemAtpg
from repro.circuit.library import GateType
from repro.circuit.netlist import Circuit
from repro.simulation.faults import StuckAtFault

__all__ = [
    "FeedbackBridgeError",
    "build_bridge_miter",
    "BridgeAtpgResult",
    "generate_bridge_tests",
]

_FAULTY_PREFIX = "f$"
_DIFF_NET = "BRIDGE$DIFF"


class FeedbackBridgeError(ValueError):
    """Raised when one bridged net lies in the other's fan-out cone.

    A feedback bridge turns the miter combinational model into a cyclic one;
    like the switch-level simulator's dominant-driver approximation, the
    miter ATPG does not model the oscillation/latching behaviour and refuses
    rather than producing wrong proofs.
    """


def build_bridge_miter(
    circuit: Circuit,
    net_a: str,
    net_b: str,
    dominance: str = "wired-and",
) -> Circuit:
    """Build the good-vs-bridged miter for one bridge.

    ``dominance`` selects the resolution model: ``"wired-and"`` (0 wins, the
    CMOS default), ``"wired-or"`` (1 wins), ``"a-dominates"`` or
    ``"b-dominates"`` (one driver overpowers the other).

    The returned circuit shares the original primary inputs and exposes a
    single primary output ``BRIDGE$DIFF`` that is 1 iff the bridge is
    detected at some original output.
    """
    nets = set(circuit.nets)
    if net_a not in nets or net_b not in nets:
        raise ValueError(f"bridge nets must exist in the circuit: {net_a}, {net_b}")
    if net_a == net_b:
        raise ValueError("cannot bridge a net with itself")
    from repro.circuit.levelize import output_cone

    if net_b in output_cone(circuit, net_a) or net_a in output_cone(circuit, net_b):
        raise FeedbackBridgeError(
            f"{net_a} and {net_b} form a feedback bridge; the combinational "
            "miter cannot model it"
        )

    miter = Circuit(name=f"{circuit.name}_bridge_miter")
    miter.primary_inputs = list(circuit.primary_inputs)
    for gate in circuit.gates:
        miter.add_gate(gate.gate_type, list(gate.inputs), gate.output, gate.name)

    def fnet(net: str) -> str:
        """Faulty-copy name for a net (primary inputs are shared)."""
        return net if net in circuit.primary_inputs else _FAULTY_PREFIX + net

    # Pre-bridge values of the two nets inside the faulty copy.
    pre_a = fnet(net_a) + "$pre" if net_a not in circuit.primary_inputs else net_a
    pre_b = fnet(net_b) + "$pre" if net_b not in circuit.primary_inputs else net_b
    bridged = _FAULTY_PREFIX + "bridge"

    if dominance not in ("wired-and", "wired-or", "a-dominates", "b-dominates"):
        raise ValueError(f"unknown dominance model {dominance!r}")

    def faulty_source(net: str) -> str:
        """What a faulty-copy consumer reads for ``net``."""
        if net in (net_a, net_b):
            if dominance == "a-dominates":
                return net_a if net_a in circuit.primary_inputs else pre_a
            if dominance == "b-dominates":
                return net_b if net_b in circuit.primary_inputs else pre_b
            return bridged
        return fnet(net)

    for gate in circuit.gates:
        output = fnet(gate.output)
        if dominance in ("wired-and", "wired-or"):
            if gate.output in (net_a, net_b):
                output = fnet(gate.output) + "$pre"
        elif dominance == "a-dominates":
            if gate.output == net_a:
                output = pre_a  # also read by net_b's consumers
            elif gate.output == net_b:
                output = fnet(net_b) + "$dead"  # victim driver disconnected
        else:  # b-dominates
            if gate.output == net_b:
                output = pre_b
            elif gate.output == net_a:
                output = fnet(net_a) + "$dead"
        miter.add_gate(
            gate.gate_type,
            [faulty_source(n) for n in gate.inputs],
            output,
            _FAULTY_PREFIX + gate.name,
        )

    if dominance in ("wired-and", "wired-or"):
        op = GateType.AND if dominance == "wired-and" else GateType.OR
        miter.add_gate(op, [pre_a, pre_b], bridged)

    # XOR each output pair, OR-reduce to the DIFF flag.
    xors = []
    for po in circuit.primary_outputs:
        faulty_po = faulty_source(po)
        x = f"BRIDGE$X_{po}"
        miter.add_gate(GateType.XOR, [po, faulty_po], x)
        xors.append(x)
    if len(xors) == 1:
        miter.add_gate(GateType.BUF, xors, _DIFF_NET)
    else:
        miter.add_gate(GateType.OR, xors, _DIFF_NET)
    miter.add_output(_DIFF_NET)
    miter.validate()
    return miter


@dataclass
class BridgeAtpgResult:
    """Outcome of targeted generation over a bridge list."""

    vectors: list[list[int]] = field(default_factory=list)
    tested: list[tuple[str, str]] = field(default_factory=list)
    untestable: list[tuple[str, str]] = field(default_factory=list)
    aborted: list[tuple[str, str]] = field(default_factory=list)
    feedback: list[tuple[str, str]] = field(default_factory=list)


def _exhaustive_miter_check(
    miter: Circuit, exhaustive_limit: int
) -> list[int] | None | str:
    """Decide DIFF satisfiability exhaustively over its support cone.

    Returns a detecting vector, None when proven untestable, or the string
    ``"too-big"`` when the support exceeds ``exhaustive_limit`` inputs.

    A vector sets DIFF to 1 exactly when it detects ``DIFF stuck-at-0``, so
    the scan reuses the fault simulator's batched
    :meth:`~repro.simulation.fault_sim.FaultSimulator.first_detecting` —
    assignments are packed a full engine word per pass instead of being
    simulated vector by vector.
    """
    from repro.circuit.levelize import input_cone
    from repro.simulation.fault_sim import FaultSimulator

    pis = miter.primary_inputs
    support = [pi for pi in pis if pi in input_cone(miter, _DIFF_NET)]
    if len(support) > exhaustive_limit:
        return "too-big"
    sim = FaultSimulator(miter)
    diff_sa0 = StuckAtFault(_DIFF_NET, 0)
    indices = [pis.index(pi) for pi in support]
    n = len(support)
    base = [0] * len(pis)
    # Bound per-pass memory: enumerate assignments in packed-word batches.
    batch = max(sim.width, 1024)
    for start in range(0, 2**n, batch):
        chunk = []
        for code in range(start, min(start + batch, 2**n)):
            vec = list(base)
            for bit, index in enumerate(indices):
                vec[index] = (code >> bit) & 1
            chunk.append(vec)
        hit = sim.first_detecting(diff_sa0, chunk)
        if hit is not None:
            return chunk[hit - 1]
    return None


def generate_bridge_tests(
    circuit: Circuit,
    bridges: list[tuple[str, str]],
    dominance: str = "wired-and",
    backtrack_limit: int = 300,
    exhaustive_limit: int = 16,
) -> BridgeAtpgResult:
    """Run miter-based PODEM on each bridge.

    A ``tested`` entry's vector sets the miter's DIFF output to 1 — i.e.
    detects the bridge at an original primary output under the dominance
    model.  ``untestable`` entries carry a *proof* (PODEM search exhaustion,
    or exhaustive simulation of the DIFF support cone when it has at most
    ``exhaustive_limit`` inputs — PODEM is weak at proving redundancy on
    reconvergent miters, so the exhaustive fallback settles the aborts).
    """
    result = BridgeAtpgResult()
    for net_a, net_b in bridges:
        try:
            miter = build_bridge_miter(circuit, net_a, net_b, dominance)
        except FeedbackBridgeError:
            result.feedback.append((net_a, net_b))
            continue
        atpg = PodemAtpg(miter, backtrack_limit=backtrack_limit)
        outcome = atpg.generate(StuckAtFault(_DIFF_NET, 0))
        if outcome.status == AtpgStatus.TESTED:
            result.tested.append((net_a, net_b))
            result.vectors.append(outcome.pattern)
            continue
        if outcome.status == AtpgStatus.REDUNDANT:
            result.untestable.append((net_a, net_b))
            continue
        verdict = _exhaustive_miter_check(miter, exhaustive_limit)
        if verdict == "too-big":
            result.aborted.append((net_a, net_b))
        elif verdict is None:
            result.untestable.append((net_a, net_b))
        else:
            result.tested.append((net_a, net_b))
            result.vectors.append(verdict)
    return result
